package adversary

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"allforone/internal/driver"
	"allforone/internal/harness"
	"allforone/internal/protocol"
	"allforone/internal/trace"
)

// Config parameterizes one adversarial search.
type Config struct {
	// Base is the scenario the search perturbs: its protocol, topology,
	// workload, and bounds are the fixed frame; seeds, profiles, and crash
	// instants are the searched axes (which ones move depends on Strategy).
	// When Base carries a Trace, every probe records into a fresh log, and
	// findings keep theirs for replay comparison.
	Base protocol.Scenario
	// Strategy mutates the incumbent into probes; nil means
	// DefaultStrategy(0).
	Strategy Strategy
	// Objective ranks probes of equal verdict; nil means Steps().
	Objective Objective
	// Budget is the total number of probes (required, > 0).
	Budget int
	// Batch is how many probes run between incumbent updates; ≤ 0 means
	// min(Budget, 64). Smaller batches follow the search gradient more
	// eagerly; larger ones parallelize better.
	Batch int
	// Parallelism sizes the worker pool probes run on (harness.SweepCollect);
	// ≤ 0 means one worker per CPU. It never affects the search result:
	// probe generation and ranking are sequential in probe order.
	Parallelism int
	// Seed pins the search's own randomness (mutation draws). Probe
	// scenarios carry their own seeds, hopped by strategies.
	Seed int64
	// KeepFindings caps how many violation/undecided counterexamples the
	// report retains (in probe order); ≤ 0 means 16. The worst probe is
	// always retained separately.
	KeepFindings int
}

// Finding is one noteworthy probe: the complete scenario that produced it
// (replayable bit-for-bit under the virtual engine), its outcome, and its
// classification.
type Finding struct {
	// Probe is the probe's index in generation order.
	Probe int
	// Scenario is the full probe description — seed, profile, crash plan.
	// Re-running it under the virtual engine reproduces Outcome exactly.
	Scenario protocol.Scenario
	// Outcome is the probe's result (nil when the run itself returned an
	// error — see Err).
	Outcome *protocol.Outcome
	// Err is the protocol.Run error for probes the protocol itself
	// rejected mid-run (a detected invariant violation).
	Err error
	// Verdict classifies the probe; Score ranks it within its verdict.
	Verdict Verdict
	Score   float64
}

// Replay re-runs the finding's scenario (with a fresh trace log when the
// scenario records one) and returns the new outcome and trace. Under the
// virtual engine the outcome must be identical to Finding.Outcome, field
// for field — the reproduction contract every emitted counterexample
// carries.
func (f *Finding) Replay() (*protocol.Outcome, *trace.Log, error) {
	sc := f.Scenario
	if sc.Trace != nil {
		sc.Trace = trace.New()
	}
	out, err := protocol.Run(sc)
	return out, sc.Trace, err
}

// Report aggregates one search.
type Report struct {
	// Probes is the number of probes executed (= Config.Budget).
	Probes int
	// Objective / Strategy name the search's moving parts.
	Objective string
	Strategy  string
	// Per-verdict probe counts. BoundedOut tracks budget-exhausted probes
	// separately — they are inconclusive, never evidence of non-decision.
	Decided    int
	Undecided  int
	BoundedOut int
	Violations int
	// Worst is the highest-ranked probe: by verdict severity first
	// (violation > undecided > decided > bounded-out), objective score
	// second, earliest probe on ties. Nil only when Budget is 0.
	Worst *Finding
	// Findings retains violation and undecided counterexamples in probe
	// order, capped at Config.KeepFindings.
	Findings []Finding
}

// ranksAbove reports whether a is a worse schedule (for the protocol) than
// b: verdict severity first, objective score second; b wins ties, keeping
// the earliest probe and making the ranking deterministic.
func ranksAbove(a, b *Finding) bool {
	if a.Verdict != b.Verdict {
		return a.Verdict > b.Verdict
	}
	return a.Score > b.Score
}

// fatal reports search-configuration errors that must abort the search:
// scenarios the registry rejects up front. Anything else a probe returns
// is a finding (the protocol detected a violation mid-run).
func fatal(err error) bool {
	return errors.Is(err, protocol.ErrBadScenario) ||
		errors.Is(err, protocol.ErrUnknownProtocol) ||
		errors.Is(err, driver.ErrBadCrashes) ||
		errors.Is(err, driver.ErrBadEngine)
}

// Search sweeps schedule space for the worst case: Budget probes, derived
// batch by batch from the incumbent (the worst probe found so far), run on
// a worker pool, classified and ranked in probe order. The returned
// report's Worst finding reproduces bit-for-bit: re-running its Scenario
// under the virtual engine yields the identical Outcome and trace.
func Search(cfg Config) (*Report, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("adversary: Budget must be positive, got %d", cfg.Budget)
	}
	if _, ok := protocol.Lookup(cfg.Base.Protocol); !ok {
		return nil, fmt.Errorf("%w %q", protocol.ErrUnknownProtocol, cfg.Base.Protocol)
	}
	strat := cfg.Strategy
	if strat == nil {
		strat = DefaultStrategy(0)
	}
	obj := cfg.Objective
	if obj == nil {
		obj = Steps()
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 64
	}
	if batch > cfg.Budget {
		batch = cfg.Budget
	}
	keep := cfg.KeepFindings
	if keep <= 0 {
		keep = 16
	}

	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0x9e3779b97f4a7c15))
	incumbent := cfg.Base
	rep := &Report{Objective: obj.Name(), Strategy: strat.Name()}

	for probe := 0; probe < cfg.Budget; {
		b := batch
		if rest := cfg.Budget - probe; b > rest {
			b = rest
		}
		scs := make([]protocol.Scenario, b)
		for k := range scs {
			sc, err := strat.Mutate(rng, incumbent)
			if err != nil {
				return nil, err
			}
			if cfg.Base.Trace != nil {
				sc.Trace = trace.New()
			}
			scs[k] = sc
		}
		outs, errs := harness.SweepCollect(scs, cfg.Parallelism)
		for k := range scs {
			if errs[k] != nil && fatal(errs[k]) {
				return nil, fmt.Errorf("adversary: probe %d: %w", probe+k, errs[k])
			}
			f := Finding{
				Probe:    probe + k,
				Scenario: scs[k],
				Outcome:  outs[k],
				Err:      errs[k],
				Verdict:  Classify(outs[k], errs[k]),
			}
			if outs[k] != nil {
				f.Score = obj.Score(outs[k])
				// Objective-specific safety oracles (e.g. linearizability)
				// upgrade probes the generic classifier cannot condemn.
				if chk, ok := obj.(ViolationChecker); ok && f.Verdict != VerdictViolation {
					if verr := chk.CheckViolation(outs[k]); verr != nil {
						f.Verdict = VerdictViolation
						f.Err = verr
					}
				}
			}
			switch f.Verdict {
			case VerdictDecided:
				rep.Decided++
			case VerdictUndecided:
				rep.Undecided++
			case VerdictBoundedOut:
				rep.BoundedOut++
			case VerdictViolation:
				rep.Violations++
			}
			if f.Verdict >= VerdictUndecided && len(rep.Findings) < keep {
				rep.Findings = append(rep.Findings, f)
			}
			if rep.Worst == nil || ranksAbove(&f, rep.Worst) {
				worst := f
				rep.Worst = &worst
			}
		}
		probe += b
		// Local search: the next batch perturbs the worst schedule so far.
		incumbent = rep.Worst.Scenario
	}
	rep.Probes = cfg.Budget
	return rep, nil
}
