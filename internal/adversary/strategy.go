package adversary

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"time"

	"allforone/internal/failures"
	"allforone/internal/model"
	"allforone/internal/netsim"
	"allforone/internal/protocol"
)

// Strategy derives the next probe from the incumbent scenario. Mutate
// receives the incumbent by value and must not modify data the incumbent
// points to (partitions, schedules, profiles are treated as immutable;
// mutations build replacements). Strategies may keep internal counters —
// probe generation is sequential — but all randomness must come from rng,
// so a search replays bit-for-bit from its seed.
type Strategy interface {
	// Name names the strategy for reports.
	Name() string
	// Mutate derives one probe scenario from the incumbent.
	Mutate(rng *rand.Rand, sc protocol.Scenario) (protocol.Scenario, error)
}

// ---------------------------------------------------------------------------
// seed enumeration

type seedHop struct{}

// SeedHop explores the protocol's own randomness: each probe redraws the
// scenario seed, leaving topology, profile, and faults untouched.
func SeedHop() Strategy { return seedHop{} }

func (seedHop) Name() string { return "seed" }

func (seedHop) Mutate(rng *rand.Rand, sc protocol.Scenario) (protocol.Scenario, error) {
	sc.Seed = int64(rng.Uint64())
	return sc, nil
}

// ---------------------------------------------------------------------------
// skew-matrix perturbation with random restarts

type skewMutation struct {
	max     time.Duration
	entries int
	restart int
}

// SkewMutation searches the deterministic per-link delay space: it
// replaces the scenario's profile with a SkewMatrix and perturbs it. On
// average one probe in restartEvery draws a completely fresh random
// matrix (a random restart, escaping local optima — drawn from rng, so
// the strategy carries no state and a Search replays from its seed);
// other probes redraw `entries` off-diagonal entries of the incumbent
// matrix (the local step). All entries stay in [0, max]. entries ≤ 0
// defaults to n/2+1; restartEvery ≤ 0 defaults to 25.
//
// Scenarios whose incumbent profile is not a SkewMatrix (nil, uniform,
// WAN, …) restart unconditionally: the strategy owns the profile axis and
// confines the search to its deterministic subspace.
func SkewMutation(max time.Duration, entries, restartEvery int) Strategy {
	if restartEvery <= 0 {
		restartEvery = 25
	}
	return &skewMutation{max: max, entries: entries, restart: restartEvery}
}

func (s *skewMutation) Name() string { return "skew" }

func (s *skewMutation) Mutate(rng *rand.Rand, sc protocol.Scenario) (protocol.Scenario, error) {
	n, err := sc.Topology.Procs()
	if err != nil {
		return sc, fmt.Errorf("adversary: skew mutation: %w", err)
	}
	cur, isSkew := protocol.SkewMatrixEntries(sc.Profile)
	var next netsim.DelayMatrix
	if !isSkew || len(cur) != n || rng.IntN(s.restart) == 0 {
		next = netsim.RandomDelayMatrix(rng, n, s.max)
	} else {
		entries := s.entries
		if entries <= 0 {
			entries = n/2 + 1
		}
		next = netsim.DelayMatrix(cur).MutateEntries(rng, entries, s.max)
	}
	sc.Profile = protocol.SkewMatrix(next)
	return sc, nil
}

// ---------------------------------------------------------------------------
// crash-instant jitter

type crashJitter struct {
	window time.Duration
}

// CrashJitter perturbs WHEN the scheduled crashes strike, never WHO
// crashes: each timed crash instant moves by a uniform draw from
// [-window, +window] (clamped at zero), via a rebuilt failures.Schedule.
// Because the crash set is invariant, the scenario's liveness condition is
// preserved — an undecided probe found under jitter is a genuine schedule
// counterexample, not a trivially dead configuration. Scenarios without
// timed crashes have nothing to jitter; the strategy hops the seed
// instead, so a probe is never a verbatim re-measurement of the incumbent
// (which would waste budget under Combine).
func CrashJitter(window time.Duration) Strategy { return &crashJitter{window: window} }

func (c *crashJitter) Name() string { return "crash" }

func (c *crashJitter) Mutate(rng *rand.Rand, sc protocol.Scenario) (protocol.Scenario, error) {
	if !sc.Faults.HasTimed() || c.window <= 0 {
		sc.Seed = int64(rng.Uint64())
		return sc, nil
	}
	next := failures.NewSchedule(sc.Faults.N())
	for p := 0; p < sc.Faults.N(); p++ {
		pid := model.ProcID(p)
		if plan, ok := sc.Faults.Plan(pid); ok {
			if err := next.Set(pid, plan); err != nil {
				return sc, fmt.Errorf("adversary: crash jitter: %w", err)
			}
		}
		at, ok := sc.Faults.TimedPlan(pid)
		if !ok {
			continue
		}
		at += time.Duration(rng.Int64N(int64(2*c.window)+1)) - c.window
		if at < 0 {
			at = 0
		}
		if err := next.SetTimed(pid, at); err != nil {
			return sc, fmt.Errorf("adversary: crash jitter: %w", err)
		}
	}
	sc.Faults = next
	return sc, nil
}

// ---------------------------------------------------------------------------
// composition

type combined struct {
	parts []Strategy
}

// Combine applies one of the given strategies per probe, chosen uniformly
// at random — the standard way to sweep seed × skew × crash space at once.
func Combine(parts ...Strategy) Strategy {
	if len(parts) == 0 {
		panic("adversary: Combine needs at least one strategy")
	}
	return &combined{parts: parts}
}

func (c *combined) Name() string {
	names := make([]string, len(c.parts))
	for i, p := range c.parts {
		names[i] = p.Name()
	}
	return "combined(" + strings.Join(names, ",") + ")"
}

func (c *combined) Mutate(rng *rand.Rand, sc protocol.Scenario) (protocol.Scenario, error) {
	return c.parts[rng.IntN(len(c.parts))].Mutate(rng, sc)
}

// DefaultStrategy is the search default: seed enumeration, skew-matrix
// restarts/perturbation with entries up to maxDelay, and crash-instant
// jitter of up to half maxDelay. A non-positive maxDelay defaults to
// 200µs — ample to reorder deliveries at the virtual engine's scale.
func DefaultStrategy(maxDelay time.Duration) Strategy {
	if maxDelay <= 0 {
		maxDelay = 200 * time.Microsecond
	}
	return Combine(SeedHop(), SkewMutation(maxDelay, 0, 0), CrashJitter(maxDelay/2))
}

// ParseStrategy resolves a strategy name as accepted by the CLIs: seed,
// skew, crash, or combined (the default).
func ParseStrategy(name string, maxDelay time.Duration) (Strategy, error) {
	if maxDelay <= 0 {
		maxDelay = 200 * time.Microsecond
	}
	switch name {
	case "seed":
		return SeedHop(), nil
	case "skew":
		return SkewMutation(maxDelay, 0, 0), nil
	case "crash":
		return CrashJitter(maxDelay / 2), nil
	case "combined", "":
		return DefaultStrategy(maxDelay), nil
	}
	return nil, fmt.Errorf("adversary: unknown strategy %q (want seed, skew, crash, or combined)", name)
}
