// Package adversary turns the deterministic virtual-time engine from a
// replayer into a falsifier: it searches the space of schedules — message
// delivery orders (per-link skew matrices), crash instants, and seeds —
// for the worst case a Scenario's protocol can be driven into.
//
// The search is a budgeted local search with random restarts: a mutation
// Strategy perturbs the incumbent scenario (redraw skew-matrix entries,
// jitter timed crash instants, hop seeds), a batch of probe scenarios runs
// on harness.SweepCollect's worker pool, and an Objective scores each
// Outcome (rounds-to-decide, scheduler steps, virtual time). Probes are
// classified by Verdict:
//
//   - VerdictViolation — a safety check failed (agreement broken, or the
//     protocol's own invariant check returned an error): an outright bug.
//   - VerdictUndecided — the run ended deterministically blocked with live
//     undecided processes: a liveness counterexample whenever the
//     scenario's liveness condition holds.
//   - VerdictDecided — every live process finished; the objective ranks
//     how expensive the schedule made it.
//   - VerdictBoundedOut — the run was cut short at a MaxSteps or
//     MaxVirtualTime budget: INCONCLUSIVE, never conflated with genuine
//     non-decision.
//
// Every probe is a complete, self-contained Scenario (seed + profile +
// crash plan), so any finding replays bit-for-bit under the virtual
// engine: Finding.Replay re-runs it and must reproduce the identical
// Outcome and trace. Because probes are generated sequentially from one
// seeded RNG and evaluated in probe order, the whole search is itself a
// pure function of its Config, whatever the worker-pool parallelism.
package adversary

import (
	"fmt"

	"allforone/internal/protocol"
	"allforone/internal/register"
)

// Verdict classifies one probe's outcome. Higher values are worse for the
// protocol; the search ranks probes by (Verdict, Objective score).
type Verdict int

const (
	// VerdictBoundedOut: the run hit a MaxSteps/MaxVirtualTime budget —
	// inconclusive, ranked below every conclusive verdict.
	VerdictBoundedOut Verdict = iota
	// VerdictDecided: every live process decided (completed its workload).
	VerdictDecided
	// VerdictUndecided: the run ended blocked (quiesced under the virtual
	// engine) with live undecided processes.
	VerdictUndecided
	// VerdictViolation: a safety property or protocol invariant broke.
	VerdictViolation
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictBoundedOut:
		return "bounded-out"
	case VerdictDecided:
		return "decided"
	case VerdictUndecided:
		return "undecided"
	case VerdictViolation:
		return "violation"
	}
	return fmt.Sprintf("Verdict(%d)", int(v))
}

// Classify derives a probe's verdict from its run result. err is the
// protocol.Run error, if any: protocols report detected invariant breaks
// (e.g. replicated-log disagreement) as errors, which the falsifier counts
// as violations, not as probe failures.
func Classify(out *protocol.Outcome, err error) Verdict {
	if err != nil {
		return VerdictViolation
	}
	if out.CheckAgreement() != nil {
		return VerdictViolation
	}
	if out.BoundedOut() {
		return VerdictBoundedOut
	}
	if out.Undecided() == 0 {
		return VerdictDecided
	}
	return VerdictUndecided
}

// Objective scores one probe's Outcome; higher is worse for the protocol.
// The score only ranks probes of equal Verdict — a violation always
// outranks the most expensive decided run.
type Objective interface {
	// Name names the objective for reports.
	Name() string
	// Score evaluates the outcome; higher means worse.
	Score(out *protocol.Outcome) float64
}

type objectiveFunc struct {
	name string
	fn   func(out *protocol.Outcome) float64
}

func (o objectiveFunc) Name() string                        { return o.name }
func (o objectiveFunc) Score(out *protocol.Outcome) float64 { return o.fn(out) }

// NewObjective builds an Objective from a name and a scoring function.
func NewObjective(name string, fn func(out *protocol.Outcome) float64) Objective {
	return objectiveFunc{name: name, fn: fn}
}

// Rounds maximizes the latest decision round — the paper's own cost
// measure for consensus executions.
func Rounds() Objective {
	return NewObjective("rounds", func(out *protocol.Outcome) float64 {
		return float64(out.MaxDecisionRound())
	})
}

// Steps maximizes the number of discrete events the virtual engine
// processed — the finest-grained schedule cost, counting every message
// delivery and timer.
func Steps() Objective {
	return NewObjective("steps", func(out *protocol.Outcome) float64 {
		return float64(out.Steps)
	})
}

// VirtualTime maximizes the virtual clock at the end of the run — the
// latency the schedule inflicted.
func VirtualTime() Objective {
	return NewObjective("vtime", func(out *protocol.Outcome) float64 {
		return float64(out.VirtualTime)
	})
}

// ViolationChecker is an optional Objective capability: an objective that
// can detect safety violations the generic agreement check cannot see
// (e.g. a non-linearizable register history) implements it, and Search
// upgrades any probe it flags to VerdictViolation. The returned error is
// the violation's description, kept on the Finding.
type ViolationChecker interface {
	// CheckViolation inspects a probe's outcome; a non-nil error means the
	// schedule drove the protocol into a safety violation.
	CheckViolation(out *protocol.Outcome) error
}

// linearizabilityObjective scores schedules by event count (so the local
// search still climbs schedule cost between findings) and flags runs whose
// operation history no sequential register execution can explain.
type linearizabilityObjective struct{}

func (linearizabilityObjective) Name() string { return "linearizability" }

func (linearizabilityObjective) Score(out *protocol.Outcome) float64 {
	return float64(out.Steps)
}

// CheckViolation runs register.CheckLinearizable against the probe's
// recorded history. Outcomes of non-register protocols carry no history
// and pass vacuously.
func (linearizabilityObjective) CheckViolation(out *protocol.Outcome) error {
	res, ok := out.Raw.(*register.Result)
	if !ok {
		return nil
	}
	return res.CheckLinearizable()
}

// ObjectiveLinearizability wires register.CheckLinearizable into the
// falsifier: every probe of a register scenario has its timestamped
// operation history checked (memoized Wing&Gong), and a history with a
// stale read, a new-old inversion, or a lost update surfaces as a
// VerdictViolation finding — replayable bit-for-bit like any other.
func ObjectiveLinearizability() Objective { return linearizabilityObjective{} }

// ParseObjective resolves an objective name as accepted by the CLIs:
// rounds, steps, vtime, or lin.
func ParseObjective(name string) (Objective, error) {
	switch name {
	case "rounds":
		return Rounds(), nil
	case "steps", "":
		return Steps(), nil
	case "vtime", "virtual-time":
		return VirtualTime(), nil
	case "lin", "linearizability":
		return ObjectiveLinearizability(), nil
	}
	return nil, fmt.Errorf("adversary: unknown objective %q (want rounds, steps, vtime, or lin)", name)
}
