// Package multivalued extends the paper's binary consensus to arbitrary
// proposal values — the classical reduction from multivalued to binary
// consensus (as in Raynal 2018, and Cachin-Guerraoui-Rodrigues 2011),
// instantiated over the hybrid communication model so that it inherits the
// one-for-all fault tolerance.
//
// Construction:
//
//  1. Every process URB-broadcasts PROP(i, v_i) (uniform reliable
//     broadcast: forward on first receipt, deliver after forwarding — if
//     any process delivers, every correct process eventually delivers).
//  2. Processes run binary consensus instances k = 0, 1, 2, … (on process
//     index k mod n, cycling). The input of instance k is 1 iff PROP of
//     the target process has been delivered. Each instance is the paper's
//     Algorithm 3 (common coin, cluster consensus, closure accounting).
//  3. The first instance that decides 1 selects its target's proposal:
//     processes wait for the (guaranteed) URB delivery and decide that
//     value, broadcasting MV-DECIDE so that stragglers terminate.
//
// Termination: once every correct process has delivered every correct
// process's proposal, the next instance targeting a correct process gets
// unanimous input 1 and must decide 1. Under the paper's liveness
// condition (clusters with a survivor covering a majority), the embedded
// binary instances terminate with probability 1, so the reduction does
// too — including under majority crashes that keep a majority-cluster
// survivor.
package multivalued

import (
	"errors"
	"fmt"
	"time"

	"allforone/internal/coin"
	"allforone/internal/consensusobj"
	"allforone/internal/driver"
	"allforone/internal/failures"
	"allforone/internal/metrics"
	"allforone/internal/model"
	"allforone/internal/netsim"
	"allforone/internal/shmem"
	"allforone/internal/sim"
	"allforone/internal/vclock"
)

// Config describes one multivalued consensus execution.
type Config struct {
	// Partition is the cluster decomposition (required).
	Partition *model.Partition
	// Proposals holds each process's proposed value (required, length n).
	// Values may repeat; the empty string is a valid proposal.
	Proposals []string
	// Seed makes all randomness reproducible. Under sim.EngineVirtual it
	// pins the entire execution.
	Seed int64
	// Engine selects the execution engine; the zero value is
	// sim.EngineVirtual (deterministic discrete-event simulation — same
	// Config, same Result). sim.EngineRealtime keeps the original
	// goroutine-per-process backend for differential testing.
	Engine sim.Engine
	// Crashes is the failure pattern; crash points are consulted at the
	// start of every binary round, with Round counting binary rounds
	// globally across instances. Nil means crash-free.
	Crashes *failures.Schedule
	// MaxInstances bounds the number of binary instances (0 = 4n).
	MaxInstances int
	// MaxRoundsPerInstance bounds each binary instance (0 = 1000).
	MaxRoundsPerInstance int
	// Timeout aborts blocked realtime-engine runs; zero means
	// DefaultTimeout. The virtual engine detects blocked runs by
	// quiescence instead and ignores this field.
	Timeout time.Duration
	// MaxVirtualTime bounds the virtual clock of an EngineVirtual run;
	// zero means unbounded (quiescence and MaxSteps still apply).
	MaxVirtualTime time.Duration
	// MaxSteps bounds the number of discrete events of an EngineVirtual
	// run; zero means sim.DefaultMaxSteps, negative means unbounded.
	MaxSteps int64
	// Workers sets the virtual engine expansion-pool width
	// (driver.Config.Workers): pure mechanism, bit-identical results at
	// every setting; 0 = one worker per CPU.
	Workers int
	// MinDelay/MaxDelay bound uniform random message transit time.
	MinDelay, MaxDelay time.Duration
	// NetOptions appends extra network options (e.g. a compiled
	// NetworkProfile delay policy); a delay function here overrides
	// MinDelay/MaxDelay.
	NetOptions []netsim.Option
}

// DefaultTimeout bounds runs whose liveness condition may not hold.
const DefaultTimeout = driver.DefaultTimeout

// Errors returned by Run.
var ErrBadConfig = errors.New("multivalued: invalid configuration")

// ProcResult is one process's outcome.
type ProcResult struct {
	Status   sim.Status
	Decision string // meaningful iff Status == StatusDecided
	Rounds   int    // total binary rounds executed
}

// Result aggregates a run.
type Result struct {
	Procs   []ProcResult
	Metrics metrics.Snapshot
	// Elapsed is wall-clock under the realtime engine, virtual-clock under
	// the virtual engine (equal to VirtualTime, so virtual Results are
	// bit-reproducible from their Configs).
	Elapsed time.Duration
	// VirtualTime / Steps / Quiesced report the virtual engine's clock,
	// event count, and deterministic blocked-forever verdict (see sim.Result).
	VirtualTime time.Duration
	Steps       int64
	Quiesced    bool
	// DeadlineExceeded / StepsExceeded report a bounded-out run — cut short
	// at a MaxVirtualTime / MaxSteps budget, inconclusive about liveness
	// (see sim.Result).
	DeadlineExceeded bool
	StepsExceeded    bool
	// Sched counts the virtual scheduler's internal work (events
	// scheduled, timer-wheel cascades, deepest bucket); zero under the
	// realtime engine (see sim.Result).
	Sched vclock.SchedulerStats
}

// Decided returns the decided value and how many processes decided it.
func (r *Result) Decided() (val string, count int, ok bool) {
	for _, pr := range r.Procs {
		if pr.Status == sim.StatusDecided {
			count++
			val = pr.Decision
		}
	}
	return val, count, count > 0
}

// AllLiveDecided reports whether every non-crashed process decided.
func (r *Result) AllLiveDecided() bool {
	for _, pr := range r.Procs {
		if pr.Status != sim.StatusDecided && pr.Status != sim.StatusCrashed {
			return false
		}
	}
	return true
}

// CheckAgreement verifies all decisions are equal.
func (r *Result) CheckAgreement() error {
	first := ""
	seen := false
	for i, pr := range r.Procs {
		if pr.Status != sim.StatusDecided {
			continue
		}
		if !seen {
			first, seen = pr.Decision, true
			continue
		}
		if pr.Decision != first {
			return fmt.Errorf("multivalued: agreement violated: %v decided %q, earlier %q",
				model.ProcID(i), pr.Decision, first)
		}
	}
	return nil
}

// CheckValidity verifies every decision was somebody's proposal.
func (r *Result) CheckValidity(proposals []string) error {
	for i, pr := range r.Procs {
		if pr.Status != sim.StatusDecided {
			continue
		}
		ok := false
		for _, p := range proposals {
			if p == pr.Decision {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("multivalued: validity violated: %v decided %q, never proposed",
				model.ProcID(i), pr.Decision)
		}
	}
	return nil
}

// Message types.

// propMsg carries a URB-forwarded proposal.
type propMsg struct {
	Origin model.ProcID
	Val    string
}

// instMsg is the (instance, round, est) message of the embedded binary
// instances.
type instMsg struct {
	Inst  int
	Round int
	Est   model.Value
}

// binDecideMsg short-circuits one binary instance.
type binDecideMsg struct {
	Inst int
	Val  model.Value
}

// mvDecideMsg announces the final multivalued decision.
type mvDecideMsg struct {
	Val string
}

// instKey orders protocol positions: instance, then round.
type instKey struct{ inst, round int }

func (k instKey) less(o instKey) bool {
	if k.inst != o.inst {
		return k.inst < o.inst
	}
	return k.round < o.round
}

type outcome struct {
	status sim.Status
	val    string
	rounds int
}

type proc struct {
	id      model.ProcID
	part    *model.Partition
	net     *netsim.Network
	cons    *consensusobj.Array
	seed    int64
	sched   *failures.Schedule
	ctr     *metrics.Counters
	h       *driver.Handle // the engine's abort/kill state
	maxInst int
	maxRnd  int

	delivered   map[model.ProcID]string // URB-delivered proposals
	binDecided  map[int]model.Value     // finished binary instances
	pendingInst map[instKey][]pendingInstMsg
	globalRound int // monotone count of binary rounds, for crash points
}

type pendingInstMsg struct {
	from model.ProcID
	est  model.Value
}

// commonBit derives the shared coin bit of (instance, round): a pure
// function of the run seed, so every process reads the same sequence.
func (p *proc) commonBit(inst, round int) model.Value {
	c := coin.NewSplitMixCommon(uint64(p.seed) ^ (uint64(inst+1) * 0x9e37_79b9_7f4a_7c15))
	return c.Bit(round)
}

// urbDeliver implements the forward-then-deliver discipline: on the first
// PROP(origin, v), forward it to everyone, then record the delivery.
func (p *proc) urbDeliver(m propMsg) {
	if _, ok := p.delivered[m.Origin]; ok {
		return
	}
	p.net.Broadcast(p.id, m) // forward first (uniformity)
	p.delivered[m.Origin] = m.Val
}

// handle dispatches one incoming message; it returns a non-nil final
// outcome when the message ends the whole execution (MV-DECIDE).
func (p *proc) handle(msg netsim.Message, cur instKey, sup *tally) *outcome {
	switch m := msg.Payload.(type) {
	case propMsg:
		p.urbDeliver(m)
	case mvDecideMsg:
		p.net.Broadcast(p.id, m) // relay before deciding (no deadlock)
		return &outcome{status: sim.StatusDecided, val: m.Val, rounds: p.globalRound}
	case binDecideMsg:
		if _, ok := p.binDecided[m.Inst]; !ok {
			p.binDecided[m.Inst] = m.Val
		}
	case instMsg:
		k := instKey{inst: m.Inst, round: m.Round}
		switch {
		case k == cur && sup != nil:
			sup.add(p.part, msg.From, m.Est)
		case cur.less(k):
			p.pendingInst[k] = append(p.pendingInst[k], pendingInstMsg{from: msg.From, est: m.Est})
		}
	}
	return nil
}

// tally is the supporters accounting with cluster closure (one for all).
type tally struct {
	n      int
	byVal  map[model.Value]*model.ProcSet
	covers *model.ProcSet
}

func newTally(n int) *tally {
	return &tally{n: n, byVal: make(map[model.Value]*model.ProcSet, 2), covers: model.NewProcSet(n)}
}

func (t *tally) add(part *model.Partition, sender model.ProcID, v model.Value) {
	set, ok := t.byVal[v]
	if !ok {
		set = model.NewProcSet(t.n)
		t.byVal[v] = set
	}
	closure := part.Cluster(sender)
	set.UnionInto(closure)
	t.covers.UnionInto(closure)
}

func (t *tally) majority() (model.Value, bool) {
	for _, v := range []model.Value{model.Zero, model.One} {
		if set, ok := t.byVal[v]; ok && set.IsMajority() {
			return v, true
		}
	}
	return model.Bot, false
}

// binaryInstance runs one tagged instance of the paper's Algorithm 3 and
// returns its binary decision, or a final outcome if the execution ended.
func (p *proc) binaryInstance(inst int, input model.Value) (model.Value, *outcome) {
	if v, ok := p.binDecided[inst]; ok {
		return v, nil
	}
	est := input
	for r := 1; ; r++ {
		p.globalRound++
		if p.h.Killed() {
			return model.Bot, &outcome{status: sim.StatusCrashed, rounds: p.globalRound}
		}
		if p.h.Aborted() || (p.maxRnd > 0 && r > p.maxRnd) {
			return model.Bot, &outcome{status: sim.StatusBlocked, rounds: p.globalRound}
		}
		if p.sched.ShouldCrash(p.id, failures.Point{
			Round: p.globalRound, Phase: 1, Stage: failures.StageRoundStart,
		}) {
			return model.Bot, &outcome{status: sim.StatusCrashed, rounds: p.globalRound}
		}

		// Cluster agreement (one CONS object per instance round).
		est = p.clusterPropose(inst, r, est)

		// Exchange with closure accounting.
		cur := instKey{inst: inst, round: r}
		p.net.Broadcast(p.id, instMsg{Inst: inst, Round: r, Est: est})
		sup := newTally(p.part.N())
		for _, bm := range p.pendingInst[cur] {
			sup.add(p.part, bm.from, bm.est)
		}
		delete(p.pendingInst, cur)
		for !sup.covers.IsMajority() {
			// An instance short-circuit may have arrived while buffering.
			if v, ok := p.binDecided[inst]; ok {
				return v, nil
			}
			msg, ok := p.net.Receive(p.id, p.h.Done())
			if p.h.Killed() {
				// A timed crash struck while waiting: halt before acting on
				// whatever was (or was not) received.
				return model.Bot, &outcome{status: sim.StatusCrashed, rounds: p.globalRound}
			}
			if !ok {
				return model.Bot, &outcome{status: sim.StatusBlocked, rounds: p.globalRound}
			}
			if out := p.handle(msg, cur, sup); out != nil {
				return model.Bot, out
			}
		}
		if v, ok := p.binDecided[inst]; ok {
			return v, nil
		}

		s := p.commonBit(inst, r)
		p.ctr.ObserveRound(int64(p.globalRound))
		if v, ok := sup.majority(); ok {
			est = v
			if s == v {
				p.binDecided[inst] = v
				p.ctr.AddDecideMsgs(int64(p.part.N()))
				p.net.Broadcast(p.id, binDecideMsg{Inst: inst, Val: v})
				return v, nil
			}
		} else {
			est = s
		}
	}
}

// clusterPropose runs the intra-cluster consensus for (instance, round).
func (p *proc) clusterPropose(inst, r int, v model.Value) model.Value {
	out := p.cons.Get(inst*1_000_000+r, 1).Propose(v)
	p.ctr.AddConsInvocations(1)
	return out
}

// run executes the full reduction for one process.
func (p *proc) run(proposal string) outcome {
	// Stage 1: URB-broadcast own proposal (broadcast = forward; then
	// deliver locally).
	p.net.Broadcast(p.id, propMsg{Origin: p.id, Val: proposal})
	p.delivered[p.id] = proposal

	// Stage 2: cycle binary instances over target processes.
	maxInst := p.maxInst
	for inst := 0; inst < maxInst; inst++ {
		target := model.ProcID(inst % p.part.N())
		input := model.Zero
		if _, ok := p.delivered[target]; ok {
			input = model.One
		}
		dec, fin := p.binaryInstance(inst, input)
		if fin != nil {
			return *fin
		}
		if dec != model.One {
			continue
		}
		// Stage 3: wait for the guaranteed delivery of the winner's value.
		for {
			if v, ok := p.delivered[target]; ok {
				p.ctr.AddDecideMsgs(int64(p.part.N()))
				p.net.Broadcast(p.id, mvDecideMsg{Val: v})
				return outcome{status: sim.StatusDecided, val: v, rounds: p.globalRound}
			}
			msg, ok := p.net.Receive(p.id, p.h.Done())
			if p.h.Killed() {
				return outcome{status: sim.StatusCrashed, rounds: p.globalRound}
			}
			if !ok {
				return outcome{status: sim.StatusBlocked, rounds: p.globalRound}
			}
			if out := p.handle(msg, instKey{inst: maxInst + 1}, nil); out != nil {
				return *out
			}
		}
	}
	return outcome{status: sim.StatusBlocked, rounds: p.globalRound}
}

// Run executes one multivalued consensus instance.
func Run(cfg Config) (*Result, error) {
	if cfg.Partition == nil {
		return nil, fmt.Errorf("%w: nil partition", ErrBadConfig)
	}
	n := cfg.Partition.N()
	if len(cfg.Proposals) != n {
		return nil, fmt.Errorf("%w: %d proposals for %d processes", ErrBadConfig, len(cfg.Proposals), n)
	}

	var ctr metrics.Counters
	var nw *netsim.Network
	arrays := make([]*consensusobj.Array, cfg.Partition.M())
	for x := range arrays {
		arrays[x] = consensusobj.NewArray(shmem.NewMemory(), "MVCONS")
	}

	maxInst := cfg.MaxInstances
	if maxInst <= 0 {
		maxInst = 4 * n
	}
	maxRnd := cfg.MaxRoundsPerInstance
	if maxRnd <= 0 {
		maxRnd = 1000
	}

	outcomes := make([]outcome, n)
	out, err := driver.Run(driver.Config{
		Engine:         cfg.Engine,
		Timeout:        cfg.Timeout,
		MaxVirtualTime: cfg.MaxVirtualTime,
		MaxSteps:       cfg.MaxSteps,
		Workers:        cfg.Workers,
		Crashes:        cfg.Crashes,
	}, n, driver.StandardNet(&nw, n, uint64(cfg.Seed)^0x60be_e2be_e120_fc15, &ctr, cfg.MinDelay, cfg.MaxDelay, cfg.NetOptions...),
		func(i int, h *driver.Handle) {
			id := model.ProcID(i)
			p := &proc{
				id:          id,
				part:        cfg.Partition,
				net:         nw,
				cons:        arrays[cfg.Partition.ClusterOf(id)],
				seed:        cfg.Seed,
				sched:       cfg.Crashes,
				ctr:         &ctr,
				h:           h,
				maxInst:     maxInst,
				maxRnd:      maxRnd,
				delivered:   make(map[model.ProcID]string, n),
				binDecided:  make(map[int]model.Value),
				pendingInst: make(map[instKey][]pendingInstMsg),
			}
			outcomes[i] = p.run(cfg.Proposals[i])
		})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Procs:            make([]ProcResult, n),
		Metrics:          ctr.Read(),
		Elapsed:          out.Elapsed,
		VirtualTime:      out.VirtualTime,
		Steps:            out.Steps,
		Quiesced:         out.Quiesced,
		DeadlineExceeded: out.DeadlineExceeded,
		StepsExceeded:    out.StepsExceeded,
		Sched:            out.Sched,
	}
	for i, o := range outcomes {
		res.Procs[i] = ProcResult{Status: o.status, Decision: o.val, Rounds: o.rounds}
	}
	return res, nil
}
