package multivalued

import (
	"allforone/internal/protocol"
	"allforone/internal/sim"
)

// ProtocolName is the registry name of multivalued hybrid consensus.
const ProtocolName = "multivalued"

func init() {
	protocol.MustRegister(protocol.New(protocol.Info{
		Name:           ProtocolName,
		Description:    "multivalued consensus over the hybrid model (URB + binary-instance reduction)",
		Proposals:      protocol.ProposalsValues,
		NeedsPartition: true,
		HasNetwork:     true,
		StageCrashes:   true,
		TimedCrashes:   true,
	}, runScenario))
}

func runScenario(sc *protocol.Scenario) (*protocol.Outcome, error) {
	part := sc.Topology.Partition
	netOpts, err := sc.NetOptions(part.N(), part)
	if err != nil {
		return nil, err
	}
	res, err := Run(Config{
		Partition:            part,
		Proposals:            sc.Workload.Values,
		Seed:                 sc.Seed,
		Engine:               sc.Engine,
		Crashes:              sc.Faults,
		MaxInstances:         sc.Bounds.MaxInstances,
		MaxRoundsPerInstance: sc.Bounds.MaxRounds,
		Timeout:              sc.Bounds.Timeout,
		MaxVirtualTime:       sc.Bounds.MaxVirtualTime,
		MaxSteps:             sc.Bounds.MaxSteps,
		Workers:              sc.Workers,
		NetOptions:           netOpts,
	})
	if err != nil {
		return nil, err
	}
	out := &protocol.Outcome{
		Protocol:         ProtocolName,
		Procs:            make([]protocol.ProcOutcome, len(res.Procs)),
		Metrics:          res.Metrics,
		Elapsed:          res.Elapsed,
		VirtualTime:      res.VirtualTime,
		Steps:            res.Steps,
		Quiesced:         res.Quiesced,
		DeadlineExceeded: res.DeadlineExceeded,
		StepsExceeded:    res.StepsExceeded,
		Sched:            res.Sched,
		Raw:              res,
	}
	for i, pr := range res.Procs {
		po := protocol.ProcOutcome{Status: pr.Status, Round: pr.Rounds}
		if pr.Status == sim.StatusDecided {
			po.Decision = pr.Decision
		}
		out.Procs[i] = po
	}
	return out, nil
}
