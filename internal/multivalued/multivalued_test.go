package multivalued

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"allforone/internal/failures"
	"allforone/internal/model"
	"allforone/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	t.Parallel()
	if _, err := Run(Config{Proposals: []string{"a"}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil partition error = %v", err)
	}
	if _, err := Run(Config{Partition: model.Singletons(3), Proposals: []string{"a"}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short proposals error = %v", err)
	}
}

func TestUnanimousProposals(t *testing.T) {
	t.Parallel()
	partitions := map[string]*model.Partition{
		"fig1-left":      model.Fig1Left(),
		"fig1-right":     model.Fig1Right(),
		"singletons-5":   model.Singletons(5),
		"single-cluster": model.SingleCluster(4),
	}
	for name, part := range partitions {
		name, part := name, part
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			props := make([]string, part.N())
			for i := range props {
				props[i] = "value-X"
			}
			res, err := Run(Config{
				Partition: part,
				Proposals: props,
				Seed:      11,
				Timeout:   20 * time.Second,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.AllLiveDecided() {
				t.Fatalf("not all decided: %+v", res.Procs)
			}
			val, count, _ := res.Decided()
			if val != "value-X" || count != part.N() {
				t.Errorf("decided (%q, %d), want (value-X, %d)", val, count, part.N())
			}
		})
	}
}

func TestDistinctProposalsAgreeOnOne(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			t.Parallel()
			part := model.Fig1Left()
			props := make([]string, part.N())
			for i := range props {
				props[i] = fmt.Sprintf("candidate-%d", i)
			}
			res, err := Run(Config{
				Partition: part,
				Proposals: props,
				Seed:      seed,
				Timeout:   20 * time.Second,
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := res.CheckAgreement(); err != nil {
				t.Fatal(err)
			}
			if err := res.CheckValidity(props); err != nil {
				t.Fatal(err)
			}
			if !res.AllLiveDecided() {
				t.Fatalf("not all decided: %+v", res.Procs)
			}
		})
	}
}

// The headline property carries over: multivalued consensus despite a
// majority crash, because the embedded binary instances inherit the
// one-for-all closure.
func TestMajorityCrashSurvivorDecides(t *testing.T) {
	t.Parallel()
	part := model.Fig1Right()
	props := []string{"a", "b", "c", "d", "e", "f", "g"}
	sched := failures.NewSchedule(7)
	for _, p := range []model.ProcID{0, 1, 3, 4, 5, 6} { // all but p3 ∈ P[2]
		if err := sched.Set(p, failures.Crash{
			At: failures.Point{Round: 1, Phase: 1, Stage: failures.StageRoundStart},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(Config{
		Partition: part,
		Proposals: props,
		Seed:      3,
		Crashes:   sched,
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Procs[2].Status != sim.StatusDecided {
		t.Fatalf("survivor did not decide: %+v", res.Procs)
	}
	if err := res.CheckValidity(props); err != nil {
		t.Fatal(err)
	}
	if got := res.Decided; got == nil {
		t.Fatal("no decision")
	}
	val, count, _ := res.Decided()
	if count != 1 {
		t.Errorf("decided count = %d, want 1", count)
	}
	// The decided value must be one of the proposals (crashed processes'
	// proposals still circulated — their PROP broadcast precedes the
	// crash point, as documented).
	found := false
	for _, p := range props {
		if p == val {
			found = true
		}
	}
	if !found {
		t.Errorf("decided %q not among proposals", val)
	}
}

// Indulgence carries over: a dead failure pattern blocks but never yields
// a wrong or disagreeing decision.
func TestBlockedWhenLivenessFails(t *testing.T) {
	t.Parallel()
	part := model.Fig1Right()
	props := []string{"a", "b", "c", "d", "e", "f", "g"}
	sched := failures.NewSchedule(7)
	for _, p := range []model.ProcID{1, 2, 3, 4} { // wipe the majority cluster
		if err := sched.Set(p, failures.Crash{
			At: failures.Point{Round: 1, Phase: 1, Stage: failures.StageRoundStart},
		}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(Config{
		Partition: part,
		Proposals: props,
		Seed:      5,
		Crashes:   sched,
		Timeout:   400 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, _, decided := res.Decided(); decided {
		t.Fatal("decided under a dead failure pattern")
	}
	if err := res.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateProposals(t *testing.T) {
	t.Parallel()
	part := model.Singletons(4)
	props := []string{"x", "y", "x", "y"}
	res, err := Run(Config{
		Partition: part,
		Proposals: props,
		Seed:      9,
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.AllLiveDecided() {
		t.Fatalf("not all decided: %+v", res.Procs)
	}
	if err := res.CheckValidity(props); err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcess(t *testing.T) {
	t.Parallel()
	res, err := Run(Config{
		Partition: model.SingleCluster(1),
		Proposals: []string{"solo"},
		Seed:      1,
		Timeout:   20 * time.Second,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	val, count, ok := res.Decided()
	if !ok || val != "solo" || count != 1 {
		t.Errorf("Decided = %q,%d,%v", val, count, ok)
	}
}

func TestResultHelpers(t *testing.T) {
	t.Parallel()
	r := &Result{Procs: []ProcResult{
		{Status: sim.StatusDecided, Decision: "v"},
		{Status: sim.StatusCrashed},
	}}
	if err := r.CheckAgreement(); err != nil {
		t.Errorf("CheckAgreement: %v", err)
	}
	if !r.AllLiveDecided() {
		t.Error("AllLiveDecided should hold")
	}
	r.Procs = append(r.Procs, ProcResult{Status: sim.StatusDecided, Decision: "w"})
	if err := r.CheckAgreement(); err == nil {
		t.Error("CheckAgreement missed disagreement")
	}
	if err := r.CheckValidity([]string{"v", "w"}); err != nil {
		t.Errorf("CheckValidity: %v", err)
	}
	if err := r.CheckValidity([]string{"z"}); err == nil {
		t.Error("CheckValidity missed invalid decision")
	}
	r.Procs = append(r.Procs, ProcResult{Status: sim.StatusBlocked})
	if r.AllLiveDecided() {
		t.Error("AllLiveDecided should fail with blocked process")
	}
}
