package multivalued

import (
	"reflect"
	"testing"
	"time"

	"allforone/internal/failures"
	"allforone/internal/model"
	"allforone/internal/sim"
)

// replayConfig is one determinism-suite configuration: distinct proposals,
// message delays, and a mixed (step-point + timed) crash schedule.
func replayConfig(t *testing.T, seed int64) Config {
	t.Helper()
	sched := failures.NewSchedule(7)
	if err := sched.Set(5, failures.Crash{
		At: failures.Point{Round: 2, Phase: 1, Stage: failures.StageRoundStart},
	}); err != nil {
		t.Fatal(err)
	}
	if err := sched.SetTimed(6, 4*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return Config{
		Partition: model.Fig1Left(),
		Proposals: []string{"a", "b", "c", "d", "e", "f", "g"},
		Seed:      seed,
		Crashes:   sched,
		MaxDelay:  2 * time.Millisecond,
	}
}

// TestReplayBitReproducible pins the virtual-engine determinism contract
// for the multivalued reduction: identical Configs yield identical Results,
// with Steps/VirtualTime fingerprinting the entire event order.
func TestReplayBitReproducible(t *testing.T) {
	t.Parallel()
	for _, seed := range []int64{1, 42, 917} {
		res1, err := Run(replayConfig(t, seed))
		if err != nil {
			t.Fatalf("seed %d, first run: %v", seed, err)
		}
		res2, err := Run(replayConfig(t, seed))
		if err != nil {
			t.Fatalf("seed %d, second run: %v", seed, err)
		}
		if !reflect.DeepEqual(res1, res2) {
			t.Errorf("seed %d: Results diverged:\n  run1: %+v\n  run2: %+v", seed, res1, res2)
		}
		if res1.Steps == 0 {
			t.Errorf("seed %d: virtual run reported zero steps", seed)
		}
	}
}

// TestEnginesAgreeOnSafety differentially tests the two engines on the
// same configurations: agreement, validity, and crash-free termination.
func TestEnginesAgreeOnSafety(t *testing.T) {
	t.Parallel()
	part := model.Fig1Right()
	props := []string{"u", "v", "w", "x", "y", "z", "q"}
	for _, engine := range []sim.Engine{sim.EngineVirtual, sim.EngineRealtime} {
		for seed := int64(0); seed < 3; seed++ {
			res, err := Run(Config{
				Partition: part,
				Proposals: props,
				Seed:      seed,
				Engine:    engine,
				Timeout:   20 * time.Second,
			})
			if err != nil {
				t.Fatalf("%v seed %d: %v", engine, seed, err)
			}
			if err := res.CheckAgreement(); err != nil {
				t.Errorf("%v seed %d: %v", engine, seed, err)
			}
			if err := res.CheckValidity(props); err != nil {
				t.Errorf("%v seed %d: %v", engine, seed, err)
			}
			if !res.AllLiveDecided() {
				t.Errorf("%v seed %d: not all decided: %+v", engine, seed, res.Procs)
			}
		}
	}
}

// TestVirtualQuiescenceBlocks pins the deterministic blocked verdict for a
// dead failure pattern: the run must end at quiescence, instantly, instead
// of waiting out a wall-clock timeout.
func TestVirtualQuiescenceBlocks(t *testing.T) {
	t.Parallel()
	part := model.Fig1Right()
	sched := failures.NewSchedule(7)
	for _, p := range []model.ProcID{1, 2, 3, 4} { // wipe the majority cluster
		if err := sched.Set(p, failures.Crash{
			At: failures.Point{Round: 1, Phase: 1, Stage: failures.StageRoundStart},
		}); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	res, err := Run(Config{
		Partition: part,
		Proposals: []string{"a", "b", "c", "d", "e", "f", "g"},
		Seed:      5,
		Crashes:   sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 5*time.Second {
		t.Errorf("blocked verdict took %v of real time", wall)
	}
	if !res.Quiesced {
		t.Errorf("Quiesced = false, want true: %+v", res)
	}
	if _, _, decided := res.Decided(); decided {
		t.Error("decided under a dead failure pattern")
	}
}

// TestTimedCrash verifies virtual-instant failure injection: victims halt
// as crashed, survivors still decide (Fig1Left keeps a live majority
// closure), and the run stays safe.
func TestTimedCrash(t *testing.T) {
	t.Parallel()
	sched := failures.NewSchedule(7)
	if err := sched.SetTimed(3, 10*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	props := []string{"a", "b", "c", "d", "e", "f", "g"}
	res, err := Run(Config{
		Partition: model.Fig1Left(),
		Proposals: props,
		Seed:      7,
		MinDelay:  200 * time.Microsecond,
		MaxDelay:  time.Millisecond,
		Crashes:   sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[3].Status != sim.StatusCrashed {
		t.Errorf("victim = %+v, want crashed", res.Procs[3])
	}
	if err := res.CheckAgreement(); err != nil {
		t.Error(err)
	}
	if err := res.CheckValidity(props); err != nil {
		t.Error(err)
	}
	if !res.AllLiveDecided() {
		t.Errorf("survivors did not all decide: %+v", res.Procs)
	}
}
