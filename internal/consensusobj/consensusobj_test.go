package consensusobj

import (
	"math/rand/v2"
	"sync"
	"testing"

	"allforone/internal/model"
	"allforone/internal/shmem"
)

// Interface compliance.
var (
	_ Object = (*CAS)(nil)
	_ Object = (*LLSC)(nil)
	_ Object = (*countingObject)(nil)
)

func TestCASFirstProposalWins(t *testing.T) {
	t.Parallel()
	c := NewCAS()
	if _, ok := c.Decided(); ok {
		t.Fatal("fresh object reports a decision")
	}
	if got := c.Propose(model.One); got != model.One {
		t.Errorf("first Propose(1) = %v, want 1", got)
	}
	if got := c.Propose(model.Zero); got != model.One {
		t.Errorf("second Propose(0) = %v, want 1 (agreement)", got)
	}
	if got, ok := c.Decided(); !ok || got != model.One {
		t.Errorf("Decided = %v,%v, want 1,true", got, ok)
	}
}

// Regression: ⊥ is a legal proposal (Algorithm 2's CONS_x[r,2] receives it)
// and must be decidable like any other value — a later binary proposal must
// NOT overwrite it. The original implementation used Bot as the undecided
// sentinel and broke cluster agreement exactly here.
func TestProposeBotFirstDecidesBot(t *testing.T) {
	t.Parallel()
	c := NewCAS()
	if got := c.Propose(model.Bot); got != model.Bot {
		t.Fatalf("first Propose(⊥) = %v, want ⊥", got)
	}
	if got := c.Propose(model.Zero); got != model.Bot {
		t.Fatalf("second Propose(0) = %v, want ⊥ (agreement on the first proposal)", got)
	}
	if got, ok := c.Decided(); !ok || got != model.Bot {
		t.Errorf("Decided = %v,%v, want ⊥,true", got, ok)
	}

	l := NewLLSC()
	if got := l.Propose(model.Bot); got != model.Bot {
		t.Fatalf("LLSC first Propose(⊥) = %v, want ⊥", got)
	}
	if got := l.Propose(model.One); got != model.Bot {
		t.Fatalf("LLSC second Propose(1) = %v, want ⊥", got)
	}

	tas := NewTAS2()
	v0, err := tas.ProposeAt(0, model.Bot)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := tas.ProposeAt(1, model.One)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != v1 {
		t.Errorf("TAS2 disagreement with ⊥ proposal: %v vs %v", v0, v1)
	}
}

func TestCASZeroValueUsable(t *testing.T) {
	t.Parallel()
	var c CAS
	if got := c.Propose(model.Zero); got != model.Zero {
		t.Errorf("zero-value CAS Propose(0) = %v, want 0", got)
	}
}

func TestLLSCFirstProposalWins(t *testing.T) {
	t.Parallel()
	l := NewLLSC()
	if got := l.Propose(model.Zero); got != model.Zero {
		t.Errorf("first Propose(0) = %v, want 0", got)
	}
	if got := l.Propose(model.One); got != model.Zero {
		t.Errorf("second Propose(1) = %v, want 0 (agreement)", got)
	}
}

// checkConsensus drives `procs` concurrent proposers at obj and verifies
// agreement (all outputs equal) and validity (output was proposed).
func checkConsensus(t *testing.T, mk func() Object, procs, trials int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < trials; trial++ {
		obj := mk()
		proposals := make([]model.Value, procs)
		outputs := make([]model.Value, procs)
		for i := range proposals {
			proposals[i] = model.BitToValue(rng.Uint64())
		}
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outputs[i] = obj.Propose(proposals[i])
			}(i)
		}
		wg.Wait()
		decided := outputs[0]
		proposed := false
		for i := 0; i < procs; i++ {
			if outputs[i] != decided {
				t.Fatalf("trial %d: agreement violated: %v vs %v", trial, outputs[i], decided)
			}
			if proposals[i] == decided {
				proposed = true
			}
		}
		if !proposed {
			t.Fatalf("trial %d: validity violated: decided %v never proposed", trial, decided)
		}
	}
}

func TestCASConsensusProperties(t *testing.T) {
	t.Parallel()
	checkConsensus(t, func() Object { return NewCAS() }, 32, 40)
}

func TestLLSCConsensusProperties(t *testing.T) {
	t.Parallel()
	checkConsensus(t, func() Object { return NewLLSC() }, 32, 40)
}

func TestTAS2TwoProcesses(t *testing.T) {
	t.Parallel()
	for trial := 0; trial < 100; trial++ {
		obj := NewTAS2()
		outs := make([]model.Value, 2)
		var wg sync.WaitGroup
		for slot := 0; slot < 2; slot++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				v, err := obj.ProposeAt(slot, model.Value(int8(slot)))
				if err != nil {
					t.Errorf("ProposeAt(%d): %v", slot, err)
					return
				}
				outs[slot] = v
			}(slot)
		}
		wg.Wait()
		if outs[0] != outs[1] {
			t.Fatalf("trial %d: TAS2 agreement violated: %v vs %v", trial, outs[0], outs[1])
		}
		if outs[0] != model.Zero && outs[0] != model.One {
			t.Fatalf("trial %d: TAS2 decided non-proposal %v", trial, outs[0])
		}
	}
}

func TestTAS2Solo(t *testing.T) {
	t.Parallel()
	obj := NewTAS2()
	v, err := obj.ProposeAt(1, model.One)
	if err != nil {
		t.Fatalf("ProposeAt: %v", err)
	}
	if v != model.One {
		t.Errorf("solo ProposeAt = %v, want 1 (validity)", v)
	}
}

func TestTAS2BadSlot(t *testing.T) {
	t.Parallel()
	obj := NewTAS2()
	if _, err := obj.ProposeAt(2, model.One); err == nil {
		t.Error("ProposeAt(2) should fail")
	}
	if _, err := obj.ProposeAt(-1, model.One); err == nil {
		t.Error("ProposeAt(-1) should fail")
	}
}

func TestArraySameSlotSameObject(t *testing.T) {
	t.Parallel()
	mem := shmem.NewMemory()
	a := NewArray(mem, "cons")
	// Decide slot (3,1) through one handle; observe through another.
	if got := a.Get(3, 1).Propose(model.One); got != model.One {
		t.Fatalf("Propose = %v, want 1", got)
	}
	if got := a.Get(3, 1).Propose(model.Zero); got != model.One {
		t.Errorf("same slot re-propose = %v, want 1", got)
	}
	// A different slot is independent.
	if got := a.Get(3, 2).Propose(model.Zero); got != model.Zero {
		t.Errorf("different slot = %v, want 0", got)
	}
	if got := a.Allocations(); got != 2 {
		t.Errorf("Allocations = %d, want 2", got)
	}
	if got := a.Invocations(); got != 3 {
		t.Errorf("Invocations = %d, want 3", got)
	}
}

func TestArrayConcurrentSlotRace(t *testing.T) {
	t.Parallel()
	mem := shmem.NewMemory()
	a := NewArray(mem, "cons")
	const procs = 24
	outs := make([]model.Value, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = a.Get(7, 1).Propose(model.Value(int8(i % 2)))
		}(i)
	}
	wg.Wait()
	for i := 1; i < procs; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("agreement violated across racing Get+Propose: %v vs %v", outs[i], outs[0])
		}
	}
	if got := a.Allocations(); got != 1 {
		t.Errorf("Allocations = %d, want 1", got)
	}
	if got := a.Invocations(); got != procs {
		t.Errorf("Invocations = %d, want %d", got, procs)
	}
}

func TestArrayDistinctPrefixesIndependent(t *testing.T) {
	t.Parallel()
	mem := shmem.NewMemory()
	a := NewArray(mem, "a")
	b := NewArray(mem, "b")
	if got := a.Get(1, 1).Propose(model.Zero); got != model.Zero {
		t.Fatalf("a slot = %v", got)
	}
	if got := b.Get(1, 1).Propose(model.One); got != model.One {
		t.Errorf("b slot = %v, want 1 (independent of a)", got)
	}
}
