package consensusobj

import (
	"testing"

	"allforone/internal/model"
	"allforone/internal/shmem"
)

func BenchmarkCASProposeDecided(b *testing.B) {
	obj := NewCAS()
	obj.Propose(model.One)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = obj.Propose(model.Zero)
	}
}

func BenchmarkCASProposeFresh(b *testing.B) {
	for i := 0; i < b.N; i++ {
		obj := NewCAS()
		_ = obj.Propose(model.One)
	}
}

func BenchmarkCASProposeContended(b *testing.B) {
	obj := NewCAS()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			_ = obj.Propose(model.One)
		}
	})
}

func BenchmarkLLSCPropose(b *testing.B) {
	for i := 0; i < b.N; i++ {
		obj := NewLLSC()
		_ = obj.Propose(model.Zero)
	}
}

func BenchmarkArrayGetPropose(b *testing.B) {
	mem := shmem.NewMemory()
	a := NewArray(mem, "CONS")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Get(i%64, 1+i%2).Propose(model.One)
	}
}
