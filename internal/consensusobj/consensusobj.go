// Package consensusobj provides the intra-cluster consensus objects of the
// hybrid communication model. The paper (§II-A) assumes each cluster memory
// MEM_x is enriched with an operation of infinite consensus number, so a
// deterministic wait-free consensus object is available to the cluster's
// processes despite any number of crashes.
//
// The package offers consensus objects built from compare&swap and from
// LL/SC (both of infinite consensus number), a 2-process object built from
// test&set (consensus number 2, for the hierarchy illustration), and the
// round-indexed object arrays CONS_x[r, ph] used by Algorithms 2 and 3.
package consensusobj

import (
	"fmt"
	"sync"

	"allforone/internal/model"
	"allforone/internal/shmem"
)

// Object is a single-shot binary consensus object. Propose submits value v
// and returns the object's decided value: the proposal of the first propose
// operation to take effect. It is wait-free: every invocation returns after
// a bounded number of its own steps regardless of other processes.
//
// The contract (validity + agreement, as in the paper's consensus spec):
// the returned value was proposed by some process, and every invocation on
// the same object returns the same value.
type Object interface {
	Propose(v model.Value) model.Value
}

// undecided is the sentinel marking a consensus object that no propose
// operation has hit yet. It must be distinct from EVERY proposable value:
// Algorithm 2's CONS_x[r,2] legitimately receives ⊥ (Bot) as a proposal,
// so Bot cannot double as the sentinel — using it would let a later
// Propose(v) overwrite an earlier decided Propose(⊥), breaking agreement
// inside the cluster (a bug the trace uniformity checker caught in a
// randomized sweep; see TestProposeBotFirstDecidesBot).
const undecided = model.Value(-128)

// CAS is a consensus object built from a single compare&swap register: the
// first CAS(undecided → v) wins and fixes the decision. This is exactly
// the construction the paper alludes to when it equips MEM_x with
// compare&swap.
type CAS struct {
	cell shmem.CASRegister[model.Value]
	init sync.Once
}

// NewCAS returns a fresh, undecided consensus object.
func NewCAS() *CAS {
	c := &CAS{}
	c.ensureInit()
	return c
}

func (c *CAS) ensureInit() {
	c.init.Do(func() { c.cell.Write(undecided) })
}

// Propose implements Object.
func (c *CAS) Propose(v model.Value) model.Value {
	c.ensureInit()
	c.cell.CompareAndSwap(undecided, v)
	return c.cell.Read()
}

// Decided returns the decided value and whether any propose happened yet.
func (c *CAS) Decided() (model.Value, bool) {
	c.ensureInit()
	v := c.cell.Read()
	return v, v != undecided
}

// LLSC is a consensus object built from a load-linked/store-conditional
// register. A proposer loads the cell; if it is still undecided it attempts
// a conditional store, and in either case returns the cell's final content.
type LLSC struct {
	cell *shmem.LLSCRegister[model.Value]
	once sync.Once
}

// NewLLSC returns a fresh, undecided consensus object.
func NewLLSC() *LLSC {
	l := &LLSC{}
	l.ensure()
	return l
}

func (l *LLSC) ensure() {
	l.once.Do(func() { l.cell = shmem.NewLLSCRegister(undecided) })
}

// Propose implements Object.
func (l *LLSC) Propose(v model.Value) model.Value {
	l.ensure()
	for {
		cur, link := l.cell.LL()
		if cur != undecided {
			return cur
		}
		if l.cell.SC(link, v) {
			return v
		}
		// SC failed: someone else's SC succeeded; next LL sees a decision.
	}
}

// TAS2 is a 2-process consensus object built from one test&set register and
// two atomic proposal registers — the classical construction showing
// test&set has consensus number (at least) 2. Process slots are 0 and 1.
type TAS2 struct {
	flag      shmem.TASRegister
	proposals [2]shmem.Register[model.Value]
	once      sync.Once
}

// NewTAS2 returns a fresh 2-process consensus object.
func NewTAS2() *TAS2 {
	t := &TAS2{}
	t.ensure()
	return t
}

func (t *TAS2) ensure() {
	t.once.Do(func() {
		t.proposals[0].Write(undecided)
		t.proposals[1].Write(undecided)
	})
}

// ProposeAt submits v on behalf of the process occupying slot (0 or 1) and
// returns the decided value. It returns an error for an invalid slot.
func (t *TAS2) ProposeAt(slot int, v model.Value) (model.Value, error) {
	if slot != 0 && slot != 1 {
		return model.Bot, fmt.Errorf("consensusobj: TAS2 slot %d out of range", slot)
	}
	t.ensure()
	t.proposals[slot].Write(v)
	if !t.flag.TestAndSet() {
		return v, nil // winner decides its own value
	}
	// Loser adopts the winner's proposal.
	other := t.proposals[1-slot].Read()
	if other == undecided {
		// The winner must have written its proposal before TAS, so this
		// cannot happen in a well-formed execution; be defensive anyway.
		return v, nil
	}
	return other, nil
}
