package consensusobj

import (
	"fmt"
	"sync/atomic"

	"allforone/internal/model"
	"allforone/internal/shmem"
)

// Array is the per-cluster unbounded array of consensus objects
// CONS_x[r, ph] used by Algorithms 2 and 3 (paper §III-B, §IV). Slots are
// allocated lazily in the cluster's shared Memory on first access, so all
// processes of the cluster racing on the same (round, phase) slot obtain
// the same object.
//
// Array also counts propose invocations: the number of consensus-object
// accesses per phase is the scalability currency of the paper's comparison
// with the m&m model (§III-C), so it is measured, not estimated.
type Array struct {
	mem     *shmem.Memory
	prefix  string
	invokes atomic.Int64
	allocs  atomic.Int64
}

// NewArray returns an object array backed by the given cluster memory.
// Distinct arrays sharing one memory must use distinct prefixes.
func NewArray(mem *shmem.Memory, prefix string) *Array {
	return &Array{mem: mem, prefix: prefix}
}

// Get returns the consensus object for (round, phase), allocating it on
// first access. Algorithm 3 uses a single phase; by convention it passes
// phase 1.
func (a *Array) Get(round, phase int) Object {
	key := fmt.Sprintf("%s/%d/%d", a.prefix, round, phase)
	obj := a.mem.GetOrCreate(key, func() any {
		a.allocs.Add(1)
		return NewCAS()
	})
	cons, ok := obj.(Object)
	if !ok {
		// Key collision with a non-consensus object: a wiring bug; fail
		// loudly with a fresh object rather than corrupt the simulation.
		panic(fmt.Sprintf("consensusobj: slot %q holds %T, not a consensus object", key, obj))
	}
	return &countingObject{inner: cons, invokes: &a.invokes}
}

// Invocations returns the total number of Propose calls through this array.
func (a *Array) Invocations() int64 { return a.invokes.Load() }

// Allocations returns how many distinct slots were allocated.
func (a *Array) Allocations() int64 { return a.allocs.Load() }

// countingObject wraps an Object to count Propose invocations.
type countingObject struct {
	inner   Object
	invokes *atomic.Int64
}

// Propose implements Object.
func (c *countingObject) Propose(v model.Value) model.Value {
	c.invokes.Add(1)
	return c.inner.Propose(v)
}
