package shmem

import (
	"fmt"
	"sync"
	"testing"
)

func TestMemoryGetOrCreate(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	calls := 0
	mk := func() any { calls++; return NewCASRegister(0) }
	a := m.GetOrCreate("k", mk)
	b := m.GetOrCreate("k", mk)
	if a != b {
		t.Error("GetOrCreate returned different objects for same key")
	}
	if calls != 1 {
		t.Errorf("mk called %d times, want 1", calls)
	}
	if got := m.Allocations(); got != 1 {
		t.Errorf("Allocations = %d, want 1", got)
	}
}

func TestMemoryLookup(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	if _, ok := m.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported present")
	}
	want := m.GetOrCreate("x", func() any { return 7 })
	got, ok := m.Lookup("x")
	if !ok || got != want {
		t.Errorf("Lookup(x) = %v,%v", got, ok)
	}
}

// All racing processes must obtain the same object, and mk must run at most
// once per key — the property CONS_x[r,ph] allocation relies on.
func TestMemoryConcurrentRace(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	const procs, keys = 16, 20
	results := make([][]any, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		results[p] = make([]any, keys)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("cons/%d", k)
				results[p][k] = m.GetOrCreate(key, func() any { return NewCASRegister(-1) })
			}
		}(p)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		for p := 1; p < procs; p++ {
			if results[p][k] != results[0][k] {
				t.Fatalf("key %d: process %d got a different object", k, p)
			}
		}
	}
	if got := m.Allocations(); got != keys {
		t.Errorf("Allocations = %d, want %d", got, keys)
	}
}

func TestGetOrCreateTyped(t *testing.T) {
	t.Parallel()
	m := NewMemory()
	r, ok := GetOrCreateTyped(m, "reg", func() *CASRegister[int] { return NewCASRegister(3) })
	if !ok || r.Read() != 3 {
		t.Fatalf("GetOrCreateTyped first access: %v, %v", r, ok)
	}
	r2, ok := GetOrCreateTyped(m, "reg", func() *CASRegister[int] { return NewCASRegister(99) })
	if !ok || r2 != r {
		t.Error("GetOrCreateTyped second access should return same object")
	}
	// Wrong type for existing slot: surfaced as ok=false.
	if _, ok := GetOrCreateTyped(m, "reg", func() *Register[string] { return NewRegister("x") }); ok {
		t.Error("GetOrCreateTyped with mismatched type should report false")
	}
}
