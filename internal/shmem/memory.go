package shmem

import "sync"

// Memory models one cluster's shared memory MEM_x: a dynamically allocated
// pool of named shared objects. The paper assumes each cluster's memory
// hosts an unbounded array of consensus objects CONS_x[r, ph]; Memory
// provides the lazy allocation that makes the unbounded array practical —
// the first process to touch a slot allocates it, every later process gets
// the same object.
//
// Memory is safe for concurrent use by all processes of the cluster.
type Memory struct {
	mu      sync.Mutex
	objects map[string]any
	allocs  int
}

// NewMemory returns an empty cluster memory.
func NewMemory() *Memory {
	return &Memory{objects: make(map[string]any)}
}

// GetOrCreate returns the object stored under key, creating it with mk on
// first access. All processes of the cluster racing on the same key obtain
// the same object; mk may be called at most once per key.
func (m *Memory) GetOrCreate(key string, mk func() any) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if obj, ok := m.objects[key]; ok {
		return obj
	}
	obj := mk()
	m.objects[key] = obj
	m.allocs++
	return obj
}

// Lookup returns the object stored under key, or nil and false.
func (m *Memory) Lookup(key string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objects[key]
	return obj, ok
}

// Allocations returns how many distinct objects have been allocated, a
// proxy for the memory footprint of a run.
func (m *Memory) Allocations() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocs
}

// GetOrCreateTyped is a generic convenience wrapper around
// Memory.GetOrCreate that performs the type assertion. It returns the zero
// value and false if the slot exists with a different type — a programming
// error surfaced to the caller rather than a panic deep in a simulation.
func GetOrCreateTyped[T any](m *Memory, key string, mk func() T) (T, bool) {
	obj := m.GetOrCreate(key, func() any { return mk() })
	t, ok := obj.(T)
	return t, ok
}
