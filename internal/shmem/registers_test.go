package shmem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestRegisterReadWrite(t *testing.T) {
	t.Parallel()
	r := NewRegister(42)
	if got := r.Read(); got != 42 {
		t.Errorf("Read = %d, want 42", got)
	}
	r.Write(7)
	if got := r.Read(); got != 7 {
		t.Errorf("Read = %d, want 7", got)
	}
}

func TestRegisterZeroValue(t *testing.T) {
	t.Parallel()
	var r Register[string]
	if got := r.Read(); got != "" {
		t.Errorf("zero register Read = %q, want empty", got)
	}
	r.Write("x")
	if got := r.Read(); got != "x" {
		t.Errorf("Read = %q, want x", got)
	}
}

// Concurrent writers then a read: the final value must be one of the
// written values (atomicity — no torn or invented values).
func TestRegisterConcurrentWriters(t *testing.T) {
	t.Parallel()
	r := NewRegister(0)
	const writers = 32
	var wg sync.WaitGroup
	for i := 1; i <= writers; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			r.Write(v)
		}(i)
	}
	wg.Wait()
	got := r.Read()
	if got < 1 || got > writers {
		t.Errorf("final value %d not among written values", got)
	}
}

func TestCASRegisterBasic(t *testing.T) {
	t.Parallel()
	r := NewCASRegister("init")
	if !r.CompareAndSwap("init", "a") {
		t.Fatal("CAS(init→a) failed")
	}
	if r.CompareAndSwap("init", "b") {
		t.Fatal("CAS(init→b) succeeded after value changed")
	}
	if got := r.Read(); got != "a" {
		t.Errorf("Read = %q, want a", got)
	}
	r.Write("c")
	if got := r.Swap("d"); got != "c" {
		t.Errorf("Swap returned %q, want c", got)
	}
	if got := r.Read(); got != "d" {
		t.Errorf("Read = %q, want d", got)
	}
}

// Exactly one of many concurrent CAS(⊥→i) attempts must win — this is the
// property that makes CAS a consensus primitive.
func TestCASRegisterSingleWinner(t *testing.T) {
	t.Parallel()
	const procs = 64
	for trial := 0; trial < 50; trial++ {
		r := NewCASRegister(-1)
		wins := make([]bool, procs)
		var wg sync.WaitGroup
		for i := 0; i < procs; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				wins[i] = r.CompareAndSwap(-1, i)
			}(i)
		}
		wg.Wait()
		winner := -1
		count := 0
		for i, w := range wins {
			if w {
				winner = i
				count++
			}
		}
		if count != 1 {
			t.Fatalf("trial %d: %d winners, want exactly 1", trial, count)
		}
		if got := r.Read(); got != winner {
			t.Fatalf("trial %d: register holds %d, winner was %d", trial, got, winner)
		}
	}
}

func TestLLSCBasic(t *testing.T) {
	t.Parallel()
	r := NewLLSCRegister(10)
	v, link := r.LL()
	if v != 10 {
		t.Fatalf("LL = %d, want 10", v)
	}
	if !r.SC(link, 11) {
		t.Fatal("SC after fresh LL failed")
	}
	if got := r.Read(); got != 11 {
		t.Errorf("Read = %d, want 11", got)
	}
	// The old link is now stale.
	if r.SC(link, 12) {
		t.Error("SC with stale link succeeded")
	}
}

func TestLLSCInterference(t *testing.T) {
	t.Parallel()
	r := NewLLSCRegister(0)
	_, link1 := r.LL()
	_, link2 := r.LL()
	if !r.SC(link2, 5) {
		t.Fatal("first SC failed")
	}
	if r.SC(link1, 6) {
		t.Error("SC succeeded although another SC intervened")
	}
	if got := r.Read(); got != 5 {
		t.Errorf("Read = %d, want 5", got)
	}
}

// Concurrent LL/SC increments must never lose an update when retried until
// success (the classic lock-free counter).
func TestLLSCLockFreeCounter(t *testing.T) {
	t.Parallel()
	r := NewLLSCRegister(0)
	const procs, increments = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < increments; k++ {
				for {
					v, link := r.LL()
					if r.SC(link, v+1) {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Read(); got != procs*increments {
		t.Errorf("counter = %d, want %d", got, procs*increments)
	}
}

func TestFetchAdd(t *testing.T) {
	t.Parallel()
	r := NewFetchAddRegister(5)
	if got := r.FetchAdd(3); got != 5 {
		t.Errorf("FetchAdd returned %d, want 5", got)
	}
	if got := r.Read(); got != 8 {
		t.Errorf("Read = %d, want 8", got)
	}
}

// Concurrent FetchAdd(1): all return values distinct, final = count.
func TestFetchAddDistinctTickets(t *testing.T) {
	t.Parallel()
	var r FetchAddRegister
	const procs = 100
	tickets := make([]int64, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tickets[i] = r.FetchAdd(1)
		}(i)
	}
	wg.Wait()
	seen := make(map[int64]bool, procs)
	for _, tk := range tickets {
		if tk < 0 || tk >= procs {
			t.Fatalf("ticket %d out of range", tk)
		}
		if seen[tk] {
			t.Fatalf("duplicate ticket %d", tk)
		}
		seen[tk] = true
	}
	if got := r.Read(); got != procs {
		t.Errorf("final = %d, want %d", got, procs)
	}
}

func TestTASSingleWinner(t *testing.T) {
	t.Parallel()
	var r TASRegister
	if r.Read() {
		t.Fatal("zero TASRegister should be unset")
	}
	const procs = 50
	var winners FetchAddRegister
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if !r.TestAndSet() {
				winners.FetchAdd(1)
			}
		}()
	}
	wg.Wait()
	if got := winners.Read(); got != 1 {
		t.Errorf("%d winners, want exactly 1", got)
	}
	if !r.Read() {
		t.Error("register should be set after TAS storm")
	}
	r.Reset()
	if r.Read() {
		t.Error("register should be unset after Reset")
	}
}

// Property: a sequence of CAS operations applied sequentially behaves like
// the naive specification.
func TestCASSequentialSpec(t *testing.T) {
	t.Parallel()
	type op struct {
		Old, New int8
	}
	f := func(init int8, ops []op) bool {
		r := NewCASRegister(init)
		spec := init
		for _, o := range ops {
			got := r.CompareAndSwap(o.Old, o.New)
			want := spec == o.Old
			if want {
				spec = o.New
			}
			if got != want {
				return false
			}
		}
		return r.Read() == spec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
