package shmem

import "testing"

func BenchmarkRegisterReadWrite(b *testing.B) {
	r := NewRegister(0)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%2 == 0 {
				r.Write(i)
			} else {
				_ = r.Read()
			}
			i++
		}
	})
}

func BenchmarkCASUncontended(b *testing.B) {
	r := NewCASRegister(int64(0))
	for i := 0; i < b.N; i++ {
		r.CompareAndSwap(int64(i), int64(i+1))
	}
}

func BenchmarkCASContended(b *testing.B) {
	r := NewCASRegister(int64(-1))
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.CompareAndSwap(-1, 1) // mostly failing CAS under contention
		}
	})
}

func BenchmarkLLSCCounterParallel(b *testing.B) {
	r := NewLLSCRegister(0)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for {
				v, link := r.LL()
				if r.SC(link, v+1) {
					break
				}
			}
		}
	})
}

func BenchmarkFetchAddParallel(b *testing.B) {
	var r FetchAddRegister
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.FetchAdd(1)
		}
	})
}

func BenchmarkMemoryGetOrCreateHit(b *testing.B) {
	m := NewMemory()
	m.GetOrCreate("k", func() any { return NewCASRegister(0) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.GetOrCreate("k", func() any { return NewCASRegister(0) })
	}
}

func BenchmarkMemoryConcurrentMixed(b *testing.B) {
	m := NewMemory()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := "slot"
			if i%16 == 0 {
				key = "other"
			}
			_ = m.GetOrCreate(key, func() any { return NewCASRegister(0) })
			i++
		}
	})
}
