// Package shmem simulates the intra-cluster shared memory of the hybrid
// communication model (paper §II-A): a memory MEM_x of atomic registers,
// enriched with synchronization operations of infinite consensus number
// (compare&swap, LL/SC) plus the weaker classics (fetch&add, test&set) used
// to illustrate Herlihy's consensus hierarchy.
//
// Every exported operation is a single atomic step: it is linearizable by
// construction (each operation holds a per-object lock for its whole
// duration, so operations on one object are totally ordered and each takes
// effect between its invocation and response). Crash failures need no
// special handling here — a crashed process simply stops invoking
// operations, and memory state persists, exactly as in the paper's model.
package shmem

import "sync"

// Register is an atomic multi-reader multi-writer read/write register.
// The zero value holds the zero value of T and is ready for use.
type Register[T any] struct {
	mu sync.Mutex
	v  T
}

// NewRegister returns a register initialized to v.
func NewRegister[T any](v T) *Register[T] {
	return &Register[T]{v: v}
}

// Read returns the current value as one atomic step.
func (r *Register[T]) Read() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write stores v as one atomic step.
func (r *Register[T]) Write(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// CASRegister is an atomic register additionally providing compare&swap,
// the paper's canonical operation of infinite consensus number.
// The zero value holds the zero value of T.
type CASRegister[T comparable] struct {
	mu sync.Mutex
	v  T
}

// NewCASRegister returns a CAS register initialized to v.
func NewCASRegister[T comparable](v T) *CASRegister[T] {
	return &CASRegister[T]{v: v}
}

// Read returns the current value as one atomic step.
func (r *CASRegister[T]) Read() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// Write stores v as one atomic step.
func (r *CASRegister[T]) Write(v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.v = v
}

// CompareAndSwap atomically replaces the value with new if it currently
// equals old, reporting whether the swap happened.
func (r *CASRegister[T]) CompareAndSwap(old, new T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.v != old {
		return false
	}
	r.v = new
	return true
}

// Swap atomically stores new and returns the previous value.
func (r *CASRegister[T]) Swap(new T) T {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.v
	r.v = new
	return old
}

// LLSCRegister is an atomic register providing load-linked/store-
// conditional, another operation pair of infinite consensus number.
//
// LL returns the current value; a subsequent SC by the same process
// succeeds only if no SC (by anyone) succeeded on the register since that
// LL. As in real hardware, the link is conservative: any successful SC
// breaks every outstanding link.
type LLSCRegister[T any] struct {
	mu  sync.Mutex
	v   T
	ver uint64 // incremented by every successful SC
}

// NewLLSCRegister returns an LL/SC register initialized to v.
func NewLLSCRegister[T any](v T) *LLSCRegister[T] {
	return &LLSCRegister[T]{v: v}
}

// Link is an opaque witness of an LL, to be passed to SC.
type Link struct{ ver uint64 }

// LL (load-linked) returns the current value and a link for a later SC.
func (r *LLSCRegister[T]) LL() (T, Link) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v, Link{ver: r.ver}
}

// SC (store-conditional) stores v if no successful SC intervened since the
// LL that produced link, reporting whether the store happened.
func (r *LLSCRegister[T]) SC(link Link, v T) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.ver != link.ver {
		return false
	}
	r.v = v
	r.ver++
	return true
}

// Read returns the current value without establishing a link.
func (r *LLSCRegister[T]) Read() T {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// FetchAddRegister is an atomic integer register with fetch&add
// (consensus number 2 in Herlihy's hierarchy).
// The zero value holds 0.
type FetchAddRegister struct {
	mu sync.Mutex
	v  int64
}

// NewFetchAddRegister returns a register initialized to v.
func NewFetchAddRegister(v int64) *FetchAddRegister {
	return &FetchAddRegister{v: v}
}

// FetchAdd atomically adds delta and returns the previous value.
func (r *FetchAddRegister) FetchAdd(delta int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.v
	r.v += delta
	return old
}

// Read returns the current value.
func (r *FetchAddRegister) Read() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.v
}

// TASRegister is an atomic boolean register with test&set
// (consensus number 2). The zero value is unset.
type TASRegister struct {
	mu  sync.Mutex
	set bool
}

// TestAndSet atomically sets the register and returns the previous state.
// The unique caller observing false is the winner.
func (r *TASRegister) TestAndSet() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.set
	r.set = true
	return old
}

// Read returns the current state.
func (r *TASRegister) Read() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.set
}

// Reset clears the register (not part of the classical object; provided for
// tests that reuse a register across cases).
func (r *TASRegister) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.set = false
}
