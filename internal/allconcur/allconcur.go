// Package allconcur implements leaderless atomic broadcast over a sparse
// overlay digraph, after AllConcur (Poke, Hoefler, Glass 2017): every
// process floods its proposal over a d-regular digraph G, tracks which
// proposals can still be in flight, and decides — without any leader or
// coordinator — once its delivered set is provably complete. The overlay's
// vertex connectivity is the fault budget: up to κ(G)−1 crashes leave the
// live subgraph strongly connected and every survivor terminates.
//
// # Dissemination and early termination
//
// A run is one single round of atomic broadcast. Each process R-broadcasts
// its value by flooding: on the FIRST receipt of origin q's value it
// forwards the value to its d overlay successors (later duplicate copies
// are dropped). Crash-free, every process therefore receives all n values
// within diam(G) hops and decides immediately — the "early termination"
// half of AllConcur: no failure-detector timeout is ever waited out.
//
// With crashes the protocol must decide when to stop waiting for a missing
// origin q. A crashing process emits a tombstone marker on each outgoing
// link (the simulation's deterministic stand-in for AllConcur's
// heartbeat-based failure detector, which provides the same guarantee: a
// successor s of a crashed f eventually learns of the crash AFTER the
// f→s channel has been drained). A successor s processing f's marker
// emits a FAIL(f,s) notification, flooded like a value. FAIL(f,s) at p
// certifies: every message f ever put on the f→s channel was processed
// by s BEFORE s emitted the notification — so if origin q's value had
// been among them, it would have been forwarded ahead of FAIL(f,s) and p
// would already hold it (per-link FIFO plus in-order batch flushing keep
// that order on every forwarding path; see the envelope invariant below).
//
// Process p may therefore exclude a missing origin q once the suspect
// closure of q is fully resolved: starting from C = {q}, every f ∈ C must
// be known crashed, and each successor s ∈ Succ(f) must either have
// certified FAIL(f,s) or be known crashed itself (joining C — it may have
// received q's value and died before forwarding). If the closure runs
// into a live successor whose channel is not yet certified drained, q's
// value may still be in flight and p keeps waiting. When every origin is
// either delivered or excluded, p decides the value of the SMALLEST
// delivered origin id; the flooding argument makes the delivered sets of
// all deciding processes equal, so decisions agree.
//
// # Message format and the envelope invariant
//
// News items (value forwards and FAIL notifications) are not sent one
// message each: each process appends them — in processing order — to an
// outbox, and flushes the outbox as ONE envelope per successor (the
// slice is shared across the d sends; netsim payloads are never
// mutated). Flushes are atomic within a reactor invocation: either every
// successor receives the envelope or (when the process crashes with an
// unflushed outbox) none does, which the exclusion rule counts — soundly
// — as "never forwarded". Per-link sequence numbers restore FIFO under
// the network's random delays (a reorder buffer holds early envelopes),
// and a short flush delay batches the items of several deliveries into
// one envelope, keeping the envelope count near n·d per dissemination
// wave instead of one message per item copy.
//
// Like gossip, the implementation is an inline handler reactor
// (driver.RunHandlers) registered as "allconcur" with the overlay and
// sub-quadratic capability flags; timed crashes are honored by the
// protocol itself (the tombstone markers), not by the driver.
package allconcur

import (
	"errors"
	"fmt"
	"time"

	"allforone/internal/driver"
	"allforone/internal/failures"
	"allforone/internal/metrics"
	"allforone/internal/model"
	"allforone/internal/netsim"
	"allforone/internal/overlay"
	"allforone/internal/sim"
	"allforone/internal/vclock"
)

// DefaultFlushDelay is the outbox batching window: news items arriving
// within it leave in one envelope. Half the typical profile delay band —
// small against dissemination latency, large enough to coalesce a
// delivery burst.
const DefaultFlushDelay = 100 * time.Microsecond

// Config describes one atomic-broadcast run.
type Config struct {
	// N is the number of processes (required, ≥ 2).
	N int
	// Proposals holds each process's value (required, length N); every
	// process that decides delivers the same complete set and decides the
	// value of the smallest delivered origin id.
	Proposals []string
	// Spec is the overlay digraph to flood over (required). Its vertex
	// connectivity is the fault budget: κ(G) ≥ f+1 keeps f crashes safe.
	Spec overlay.Spec
	// Seed makes all randomness reproducible.
	Seed int64
	// FlushDelay is the outbox batching window; 0 = DefaultFlushDelay.
	FlushDelay time.Duration
	// Engine must be sim.EngineVirtual (the zero value); Body must not be
	// sim.BodyCoroutine — allconcur is an inline handler reactor only.
	Engine sim.Engine
	Body   sim.BodyKind
	// Crashes is the timed crash pattern, honored by the protocol itself:
	// a victim halts at its crash instant after emitting tombstone markers
	// (its unflushed outbox dies with it). Step-point plans are rejected.
	Crashes *failures.Schedule
	// MaxVirtualTime / MaxSteps / Workers are the usual driver bounds;
	// MaxSteps 0 derives the sparse default (sim.StepsLinear).
	MaxVirtualTime time.Duration
	MaxSteps       int64
	Workers        int
	// MinDelay/MaxDelay bound uniform random message transit time.
	MinDelay, MaxDelay time.Duration
	// NetOptions appends extra network options (profile delay policies).
	NetOptions []netsim.Option
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("allconcur: invalid configuration")

// ProcResult is one process's outcome.
type ProcResult struct {
	Status sim.Status
	// Decision is the decided value (StatusDecided only).
	Decision string
	// Delivered is the size of the delivered set when the execution ended
	// (diagnostic: how far dissemination got before a block or crash).
	Delivered int
}

// Result aggregates an atomic-broadcast run.
type Result struct {
	Procs            []ProcResult
	Metrics          metrics.Snapshot
	Elapsed          time.Duration
	VirtualTime      time.Duration
	Steps            int64
	Quiesced         bool
	DeadlineExceeded bool
	StepsExceeded    bool
	Sched            vclock.SchedulerStats
}

// itemKind tags one news item of an envelope.
type itemKind uint8

const (
	itemVal  itemKind = iota // a value forward: Origin proposed Value
	itemFail                 // a crash certificate: Detector drained Origin→Detector
)

// item is one unit of flooded news.
type item struct {
	Kind     itemKind
	Origin   model.ProcID // VAL: the proposer; FAIL: the crashed process
	Detector model.ProcID // FAIL only: the successor certifying the drain
	Value    string       // VAL only
}

// envelope is one flushed outbox: a per-link-sequenced batch of news
// items, its slice shared by the d per-successor sends (never mutated
// after flush).
type envelope struct {
	Seq   uint32
	Items []item
}

// marker is a crashing process's tombstone, sequenced like an envelope so
// the receiver processes it only after draining everything sent before it.
type marker struct {
	Seq uint32
}

// reactor is one process's state machine (driver.Reactor).
type reactor struct {
	id    model.ProcID
	h     *driver.Handle
	net   *netsim.Network
	ctr   *metrics.Counters
	g     *overlay.Graph
	succ  []model.ProcID
	value string
	store *ProcResult

	// crash plan (protocol-level; the driver never kills us)
	victim  bool
	crashAt time.Duration

	// per-link FIFO restoration
	sendSeq []uint32                        // next seq per successor (succ order)
	expect  map[model.ProcID]uint32         // next expected seq per predecessor
	reorder map[model.ProcID]map[uint32]any // early arrivals per predecessor
	// delivered set
	received  []bool
	delivered int
	minOrigin model.ProcID // smallest delivered origin (decision candidate)
	minValue  string
	// crash certificates: fails[f][s] = FAIL(f,s) held; len>0 ⇒ f known crashed
	fails map[model.ProcID]map[model.ProcID]bool
	// outbox batching
	outbox       []item
	flushPending bool
	flushAt      time.Duration
	flushDelay   time.Duration

	started bool
	done    bool
}

func (rx *reactor) finish(st sim.Status, decision string) bool {
	*rx.store = ProcResult{Status: st, Decision: decision, Delivered: rx.delivered}
	rx.done = true
	return true
}

// crash emits the tombstone markers (sequenced after everything already
// flushed) and halts. The unflushed outbox dies with the process — the
// exclusion rule soundly counts its items as never forwarded.
func (rx *reactor) crash() bool {
	for k, s := range rx.succ {
		rx.net.Send(rx.id, s, marker{Seq: rx.sendSeq[k]})
		rx.sendSeq[k]++
	}
	return rx.finish(sim.StatusCrashed, "")
}

// deliver records origin q's value into the delivered set.
func (rx *reactor) deliver(q model.ProcID, val string) {
	rx.received[q] = true
	rx.delivered++
	if rx.delivered == 1 || q < rx.minOrigin {
		rx.minOrigin, rx.minValue = q, val
	}
}

// markFail records FAIL(f, s); it reports whether the certificate is new.
func (rx *reactor) markFail(f, s model.ProcID) bool {
	m := rx.fails[f]
	if m == nil {
		m = make(map[model.ProcID]bool)
		rx.fails[f] = m
	}
	if m[s] {
		return false
	}
	m[s] = true
	return true
}

// ingest processes one in-order payload from predecessor from: deliver and
// re-flood novel values and crash certificates; turn a tombstone into this
// process's own FAIL certificate.
func (rx *reactor) ingest(from model.ProcID, payload any) {
	switch p := payload.(type) {
	case envelope:
		for _, it := range p.Items {
			switch it.Kind {
			case itemVal:
				if !rx.received[it.Origin] {
					rx.deliver(it.Origin, it.Value)
					rx.outbox = append(rx.outbox, it)
				}
			case itemFail:
				if rx.markFail(it.Origin, it.Detector) {
					rx.outbox = append(rx.outbox, it)
				}
			}
		}
	case marker:
		// from's channel to us is drained (FIFO: everything it sent before
		// the tombstone was processed above this call). Certify it.
		if rx.markFail(from, rx.id) {
			rx.outbox = append(rx.outbox, item{Kind: itemFail, Origin: from, Detector: rx.id})
		}
	}
}

// enqueue restores per-link FIFO: process the payload if it is the next
// expected sequence number on its link, then drain any buffered
// continuation; buffer it otherwise.
func (rx *reactor) enqueue(m netsim.Message) {
	seq := seqOf(m.Payload)
	if seq != rx.expect[m.From] {
		buf := rx.reorder[m.From]
		if buf == nil {
			buf = make(map[uint32]any)
			rx.reorder[m.From] = buf
		}
		buf[seq] = m.Payload
		return
	}
	rx.ingest(m.From, m.Payload)
	rx.expect[m.From]++
	for buf := rx.reorder[m.From]; ; {
		p, ok := buf[rx.expect[m.From]]
		if !ok {
			return
		}
		delete(buf, rx.expect[m.From])
		rx.ingest(m.From, p)
		rx.expect[m.From]++
	}
}

func seqOf(payload any) uint32 {
	switch p := payload.(type) {
	case envelope:
		return p.Seq
	case marker:
		return p.Seq
	}
	panic("allconcur: unknown payload type")
}

// flushNow sends the outbox as one envelope per successor (shared slice)
// and clears it.
func (rx *reactor) flushNow() {
	rx.flushPending = false
	if len(rx.outbox) == 0 {
		return
	}
	items := rx.outbox
	rx.outbox = nil
	for k, s := range rx.succ {
		rx.net.Send(rx.id, s, envelope{Seq: rx.sendSeq[k], Items: items})
		rx.sendSeq[k]++
	}
}

// complete reports whether every origin is accounted for: delivered, or
// provably undeliverable (excludable). The crash-free fast path never
// walks a closure.
func (rx *reactor) complete() bool {
	if rx.delivered == len(rx.received) {
		return true
	}
	for q := range rx.received {
		if !rx.received[q] && !rx.excludable(model.ProcID(q)) {
			return false
		}
	}
	return true
}

// excludable resolves the suspect closure of missing origin q: every
// process that may hold q's value undelivered must be known crashed, and
// every channel out of one must be certified drained (FAIL received) or
// lead to another member of the closure. Any live successor with an
// uncertified channel means q's value may still be in flight.
func (rx *reactor) excludable(q model.ProcID) bool {
	inC := map[model.ProcID]bool{q: true}
	stack := []model.ProcID{q}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		drained := rx.fails[f]
		if len(drained) == 0 {
			return false // f not known crashed: its value may simply be slow
		}
		for _, s := range rx.g.Succ(f) {
			if drained[s] {
				continue // s certified the f→s drain without surfacing q's value
			}
			if len(rx.fails[s]) > 0 {
				if !inC[s] {
					inC[s] = true
					stack = append(stack, s)
				}
				continue // s crashed too: chase what s may have forwarded
			}
			return false // s is live and f→s is not certified drained yet
		}
	}
	return true
}

// React runs one invocation: first-invocation setup (flood own value, arm
// the crash), FIFO-ordered ingestion of every deliverable message, the
// termination check (with its mandatory final flush), and outbox flush
// scheduling.
func (rx *reactor) React(aborted bool) bool {
	if rx.done {
		return true
	}
	if aborted {
		return rx.finish(sim.StatusBlocked, "")
	}
	if !rx.started {
		rx.started = true
		if rx.victim {
			if rx.crashAt <= 0 {
				return rx.crash() // dies before proposing anything
			}
			rx.h.WakeAfter(rx.crashAt)
		}
		rx.deliver(rx.id, rx.value)
		rx.outbox = append(rx.outbox, item{Kind: itemVal, Origin: rx.id, Value: rx.value})
		rx.flushNow() // own value leaves immediately, never batched
	}
	if rx.victim && rx.h.Now() >= rx.crashAt {
		return rx.crash()
	}
	for {
		m, ok, _ := rx.net.ReceiveNow(rx.id)
		if !ok {
			break
		}
		rx.enqueue(m)
	}
	if rx.complete() {
		rx.flushNow() // mandatory: successors may still need this news
		rx.ctr.ObserveRound(1)
		return rx.finish(sim.StatusDecided, rx.minValue)
	}
	if rx.flushPending && rx.h.Now() >= rx.flushAt {
		rx.flushNow()
	}
	if len(rx.outbox) > 0 && !rx.flushPending {
		rx.flushPending = true
		rx.flushAt = rx.h.Now() + rx.flushDelay
		rx.h.WakeAfter(rx.flushDelay)
	}
	return false
}

// Run executes one atomic-broadcast instance and returns per-process
// outcomes.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: need at least two processes, have %d", ErrBadConfig, cfg.N)
	}
	if len(cfg.Proposals) != cfg.N {
		return nil, fmt.Errorf("%w: %d proposals for %d processes", ErrBadConfig, len(cfg.Proposals), cfg.N)
	}
	if cfg.Engine != sim.EngineVirtual {
		return nil, fmt.Errorf("%w: allconcur is an inline handler protocol; it runs only on the virtual engine", ErrBadConfig)
	}
	if cfg.Body == sim.BodyCoroutine {
		return nil, fmt.Errorf("%w: allconcur has no coroutine body form", ErrBadConfig)
	}
	if err := cfg.Crashes.ValidateFor(cfg.N); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Crashes.HasStepPoints() {
		return nil, fmt.Errorf("%w: allconcur honors only timed crash plans", ErrBadConfig)
	}
	g, err := cfg.Spec.Build(cfg.N, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	flushDelay := cfg.FlushDelay
	if flushDelay <= 0 {
		flushDelay = DefaultFlushDelay
	}
	crashAt := make(map[model.ProcID]time.Duration, 2)
	for _, tc := range cfg.Crashes.Timed() {
		crashAt[tc.P] = tc.At
	}

	var ctr metrics.Counters
	var nw *netsim.Network
	procs := make([]ProcResult, cfg.N)
	dcfg := driver.Config{
		Engine:         cfg.Engine,
		MaxVirtualTime: cfg.MaxVirtualTime,
		MaxSteps:       cfg.MaxSteps,
		Workers:        cfg.Workers,
		Complexity:     sim.StepsLinear,
		// Crashes stay out of the driver config on purpose: a driver crash
		// closes the victim's inbox at the instant, but the tombstone
		// protocol needs the victim to emit its markers itself.
	}
	newNet := driver.StandardNet(&nw, cfg.N, uint64(cfg.Seed)^0x93d1_4af2_0e67_b85c, &ctr, cfg.MinDelay, cfg.MaxDelay, cfg.NetOptions...)
	out, err := driver.RunHandlers(dcfg, cfg.N, newNet, func(i int, h *driver.Handle) driver.Reactor {
		id := model.ProcID(i)
		at, victim := crashAt[id]
		preds := g.Pred(id)
		rx := &reactor{
			id:         id,
			h:          h,
			net:        nw,
			ctr:        &ctr,
			g:          g,
			succ:       g.Succ(id),
			value:      cfg.Proposals[i],
			store:      &procs[i],
			victim:     victim,
			crashAt:    at,
			sendSeq:    make([]uint32, len(g.Succ(id))),
			expect:     make(map[model.ProcID]uint32, len(preds)),
			reorder:    make(map[model.ProcID]map[uint32]any, len(preds)),
			received:   make([]bool, cfg.N),
			fails:      make(map[model.ProcID]map[model.ProcID]bool),
			flushDelay: flushDelay,
		}
		return rx
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Procs: procs, Metrics: ctr.Read()}
	res.Elapsed = out.Elapsed
	res.VirtualTime = out.VirtualTime
	res.Steps = out.Steps
	res.Quiesced = out.Quiesced
	res.DeadlineExceeded = out.DeadlineExceeded
	res.StepsExceeded = out.StepsExceeded
	res.Sched = out.Sched
	return res, nil
}
