// Package allconcur implements leaderless atomic broadcast over a sparse
// overlay digraph, after AllConcur (Poke, Hoefler, Glass 2017): every
// process floods its proposal over a d-regular digraph G, tracks which
// proposals can still be in flight, and decides — without any leader or
// coordinator — once its delivered set is provably complete. The overlay's
// vertex connectivity is the fault budget: up to κ(G)−1 crashes leave the
// live subgraph strongly connected and every survivor terminates.
//
// # Dissemination and early termination
//
// A run is one single round of atomic broadcast. Each process R-broadcasts
// its value by flooding: on the FIRST receipt of origin q's value it
// forwards the value to its d overlay successors (later duplicate copies
// are dropped). Crash-free, every process therefore receives all n values
// within diam(G) hops and decides immediately — the "early termination"
// half of AllConcur: no failure-detector timeout is ever waited out.
//
// With crashes the protocol must decide when to stop waiting for a missing
// origin q. A crashing process emits a tombstone marker on each outgoing
// link (the simulation's deterministic stand-in for AllConcur's
// heartbeat-based failure detector, which provides the same guarantee: a
// successor s of a crashed f eventually learns of the crash AFTER the
// f→s channel has been drained). A successor s processing f's marker
// emits a FAIL(f,s) notification, flooded like a value. FAIL(f,s) at p
// certifies: every message f ever put on the f→s channel was processed
// by s BEFORE s emitted the notification — so if origin q's value had
// been among them, it would have been forwarded ahead of FAIL(f,s) and p
// would already hold it (per-link FIFO plus in-order batch flushing keep
// that order on every forwarding path; see the envelope invariant below).
//
// Process p may therefore exclude a missing origin q once the suspect
// closure of q is fully resolved: starting from C = {q}, every f ∈ C must
// be known crashed, and each successor s ∈ Succ(f) must either have
// certified FAIL(f,s) or be known crashed itself (joining C — it may have
// received q's value and died before forwarding). If the closure runs
// into a live successor whose channel is not yet certified drained, q's
// value may still be in flight and p keeps waiting. When every origin is
// either delivered or excluded, p decides the value of the SMALLEST
// delivered origin id; the flooding argument makes the delivered sets of
// all deciding processes equal, so decisions agree.
//
// # Message format and the envelope invariant
//
// News items (value forwards and FAIL notifications) are not sent one
// message each: each process appends them — in processing order — to an
// outbox, and flushes the outbox as ONE envelope per successor (the
// slice is shared across the d sends; netsim payloads are never
// mutated). Flushes are atomic within a reactor invocation: either every
// successor receives the envelope or (when the process crashes with an
// unflushed outbox) none does, which the exclusion rule counts — soundly
// — as "never forwarded". Per-link sequence numbers restore FIFO under
// the network's random delays (a reorder buffer holds early envelopes),
// and a short flush delay batches the items of several deliveries into
// one envelope, keeping the envelope count near n·d per dissemination
// wave instead of one message per item copy.
//
// Like gossip, the implementation is an inline handler reactor
// (driver.RunHandlers) registered as "allconcur" with the overlay and
// sub-quadratic capability flags; timed crashes are honored by the
// protocol itself (the tombstone markers), not by the driver.
package allconcur

import (
	"errors"
	"fmt"
	"time"
	"unsafe"

	"allforone/internal/driver"
	"allforone/internal/failures"
	"allforone/internal/metrics"
	"allforone/internal/model"
	"allforone/internal/netsim"
	"allforone/internal/overlay"
	"allforone/internal/sim"
	"allforone/internal/vclock"
)

// DefaultFlushDelay is the outbox batching window: news items arriving
// within it leave in one envelope. Half the typical profile delay band —
// small against dissemination latency, large enough to coalesce a
// delivery burst.
const DefaultFlushDelay = 100 * time.Microsecond

// Config describes one atomic-broadcast run.
type Config struct {
	// N is the number of processes (required, ≥ 2).
	N int
	// Proposals holds each process's value (required, length N); every
	// process that decides delivers the same complete set and decides the
	// value of the smallest delivered origin id.
	Proposals []string
	// Spec is the overlay digraph to flood over (required). Its vertex
	// connectivity is the fault budget: κ(G) ≥ f+1 keeps f crashes safe.
	Spec overlay.Spec
	// Seed makes all randomness reproducible.
	Seed int64
	// FlushDelay is the outbox batching window; 0 = DefaultFlushDelay.
	FlushDelay time.Duration
	// Engine must be sim.EngineVirtual (the zero value); Body must not be
	// sim.BodyCoroutine — allconcur is an inline handler reactor only.
	Engine sim.Engine
	Body   sim.BodyKind
	// Crashes is the timed crash pattern, honored by the protocol itself:
	// a victim halts at its crash instant after emitting tombstone markers
	// (its unflushed outbox dies with it). Step-point plans are rejected.
	Crashes *failures.Schedule
	// MaxVirtualTime / MaxSteps / Workers are the usual driver bounds;
	// MaxSteps 0 derives the sparse default (sim.StepsLinear).
	MaxVirtualTime time.Duration
	MaxSteps       int64
	Workers        int
	// MinDelay/MaxDelay bound uniform random message transit time.
	MinDelay, MaxDelay time.Duration
	// NetOptions appends extra network options (profile delay policies).
	NetOptions []netsim.Option
}

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("allconcur: invalid configuration")

// ProcResult is one process's outcome.
type ProcResult struct {
	Status sim.Status
	// Decision is the decided value (StatusDecided only).
	Decision string
	// Delivered is the size of the delivered set when the execution ended
	// (diagnostic: how far dissemination got before a block or crash).
	Delivered int
}

// Result aggregates an atomic-broadcast run.
type Result struct {
	Procs            []ProcResult
	Metrics          metrics.Snapshot
	Elapsed          time.Duration
	VirtualTime      time.Duration
	Steps            int64
	Quiesced         bool
	DeadlineExceeded bool
	StepsExceeded    bool
	Sched            vclock.SchedulerStats
}

// itemKind tags one news item of an envelope.
type itemKind uint8

const (
	itemVal  itemKind = iota // a value forward: Origin proposed Value
	itemFail                 // a crash certificate: Detector drained Origin→Detector
)

// item is one unit of flooded news.
type item struct {
	Kind     itemKind
	Origin   model.ProcID // VAL: the proposer; FAIL: the crashed process
	Detector model.ProcID // FAIL only: the successor certifying the drain
	Value    string       // VAL only
}

// envelope is one flushed outbox: a per-link-sequenced batch of news
// items, its slice shared by the d per-successor sends (never mutated
// after flush). On the wire it travels as a pooled *envelope built inside
// the network's burst expansion job (envBuilder) — the recipient recycles
// the envelope after ingesting it, so steady-state flushes allocate
// nothing per successor; the value form is still accepted (tests and the
// unsharded path may produce it).
type envelope struct {
	Seq   uint32
	Items []item
}

// envBuilder is the netsim.BurstBuilder of the flush path: it assembles
// one successor's envelope OFF the execution token, on the worker owning
// the recipient's shard, from the shard's payload pool. ctx is the boxed
// shared item batch (boxed once per flush, not once per successor) and arg
// the link's sequence number.
type envBuilder struct{}

// envelopeBytes is what one pooled envelope contributes to the
// PooledPayloadBytes stat: the envelope header itself (the item slice is
// shared across the flush's d envelopes and counted by none of them).
const envelopeBytes = int(unsafe.Sizeof(envelope{}))

// BuildPayload implements netsim.BurstBuilder.
func (envBuilder) BuildPayload(nw *netsim.Network, shard int, ctx any, arg uint64) (any, int) {
	env, _ := nw.GrabPayload(shard).(*envelope)
	if env == nil {
		env = new(envelope)
	}
	env.Seq = uint32(arg)
	env.Items = ctx.([]item)
	return env, envelopeBytes
}

// marker is a crashing process's tombstone, sequenced like an envelope so
// the receiver processes it only after draining everything sent before it.
type marker struct {
	Seq uint32
}

// interval is one maximal run [lo, hi) of delivered origin ids.
type interval struct{ lo, hi uint32 }

// intervalSet tracks the delivered origins as sorted disjoint half-open
// intervals. Flood delivery is clustered — crash-free the set collapses
// to the single interval [0, n) — so it stays a handful of entries where
// the previous per-origin bool slice cost n bytes per reactor (n² total:
// the memory wall that blocked n≥16k runs).
type intervalSet struct {
	iv    []interval
	count int
}

// Count returns the number of ids in the set.
func (s *intervalSet) Count() int { return s.count }

// Contains reports whether q is in the set.
func (s *intervalSet) Contains(q uint32) bool {
	lo, hi := 0, len(s.iv)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.iv[mid].hi > q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo < len(s.iv) && s.iv[lo].lo <= q
}

// Add inserts q, coalescing with its neighbors; it reports whether q was
// absent.
func (s *intervalSet) Add(q uint32) bool {
	// First interval with hi > q; everything before it ends at or below q.
	lo, hi := 0, len(s.iv)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.iv[mid].hi > q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	if i < len(s.iv) && s.iv[i].lo <= q {
		return false
	}
	s.count++
	joinPrev := i > 0 && s.iv[i-1].hi == q
	joinNext := i < len(s.iv) && s.iv[i].lo == q+1
	switch {
	case joinPrev && joinNext:
		s.iv[i-1].hi = s.iv[i].hi
		s.iv = append(s.iv[:i], s.iv[i+1:]...)
	case joinPrev:
		s.iv[i-1].hi = q + 1
	case joinNext:
		s.iv[i].lo = q
	default:
		s.iv = append(s.iv, interval{})
		copy(s.iv[i+1:], s.iv[i:])
		s.iv[i] = interval{lo: q, hi: q + 1}
	}
	return true
}

// EachMissing calls fn for every id in [0, n) absent from the set, in
// ascending order, stopping at the first rejection; it reports whether fn
// accepted every gap.
func (s *intervalSet) EachMissing(n uint32, fn func(uint32) bool) bool {
	next := uint32(0)
	for _, iv := range s.iv {
		for q := next; q < iv.lo; q++ {
			if !fn(q) {
				return false
			}
		}
		next = iv.hi
	}
	for q := next; q < n; q++ {
		if !fn(q) {
			return false
		}
	}
	return true
}

// failCert is one crashed process's certificate set: bit k set means
// FAIL(f, Succ(f)[k]) is held. The entry's existence alone marks f known
// crashed.
type failCert struct {
	bits []uint64
}

func (c *failCert) has(k int) bool { return c.bits[k>>6]&(1<<(k&63)) != 0 }

func (c *failCert) add(k int) bool {
	if c.has(k) {
		return false
	}
	c.bits[k>>6] |= 1 << (k & 63)
	return true
}

// heldPayload is one out-of-order arrival parked until its link sequence
// comes due.
type heldPayload struct {
	seq     uint32
	payload any
}

// reactor is one process's state machine (driver.Reactor).
type reactor struct {
	id    model.ProcID
	h     *driver.Handle
	net   *netsim.Network
	ctr   *metrics.Counters
	g     *overlay.Graph
	succ  []model.ProcID
	preds []model.ProcID
	value string
	store *ProcResult

	// crash plan (protocol-level; the driver never kills us)
	victim  bool
	crashAt time.Duration

	// per-link FIFO restoration — flat slices indexed by successor /
	// predecessor position, carved from per-run pooled backing arrays
	sendSeq []uint32        // next seq per successor (succ order)
	expect  []uint32        // next expected seq per predecessor (pred order)
	reorder [][]heldPayload // early arrivals per predecessor (pred order)
	// delivered set as sorted disjoint id intervals
	delivered intervalSet
	minOrigin model.ProcID // smallest delivered origin (decision candidate)
	minValue  string
	// crash certificates: fails[f] non-nil ⇒ f known crashed; bit k set ⇒
	// FAIL(f, Succ(f)[k]) held (lazily allocated — nil map crash-free)
	fails map[model.ProcID]*failCert
	// outbox batching
	outbox       []item
	flushPending bool
	flushAt      time.Duration
	flushDelay   time.Duration

	started bool
	decided bool
	done    bool
}

func (rx *reactor) finish(st sim.Status, decision string) bool {
	*rx.store = ProcResult{Status: st, Decision: decision, Delivered: rx.delivered.Count()}
	rx.done = true
	return true
}

// emitMarkers sends the tombstone on every outgoing link, sequenced after
// everything already flushed.
func (rx *reactor) emitMarkers() {
	for k, s := range rx.succ {
		rx.net.Send(rx.id, s, marker{Seq: rx.sendSeq[k]})
		rx.sendSeq[k]++
	}
}

// crash emits the tombstone markers and halts. The unflushed outbox dies
// with the process — the exclusion rule soundly counts its items as never
// forwarded.
func (rx *reactor) crash() bool {
	rx.emitMarkers()
	return rx.finish(sim.StatusCrashed, "")
}

// deliver records origin q's value into the delivered set; it reports
// whether q was new.
func (rx *reactor) deliver(q model.ProcID, val string) bool {
	if !rx.delivered.Add(uint32(q)) {
		return false
	}
	if rx.delivered.Count() == 1 || q < rx.minOrigin {
		rx.minOrigin, rx.minValue = q, val
	}
	return true
}

// markFail records FAIL(f, s); it reports whether the certificate is new.
func (rx *reactor) markFail(f, s model.ProcID) bool {
	if rx.fails == nil {
		rx.fails = make(map[model.ProcID]*failCert)
	}
	succ := rx.g.Succ(f)
	c := rx.fails[f]
	if c == nil {
		c = &failCert{bits: make([]uint64, (len(succ)+63)/64)}
		rx.fails[f] = c
	}
	for k, q := range succ {
		if q == s {
			return c.add(k)
		}
	}
	return false // s not a successor of f: malformed, never flooded
}

// ingestItems folds one envelope's news into the reactor's state.
func (rx *reactor) ingestItems(items []item) {
	for _, it := range items {
		switch it.Kind {
		case itemVal:
			if rx.deliver(it.Origin, it.Value) {
				rx.outbox = append(rx.outbox, it)
			}
		case itemFail:
			if rx.markFail(it.Origin, it.Detector) {
				rx.outbox = append(rx.outbox, it)
			}
		}
	}
}

// ingest processes one in-order payload from predecessor from: deliver and
// re-flood novel values and crash certificates; turn a tombstone into this
// process's own FAIL certificate. Pooled envelopes are recycled into the
// recipient's shard pool once consumed — this is the token-side half of
// the off-token payload construction (envBuilder grabs, ingest recycles).
func (rx *reactor) ingest(from model.ProcID, payload any) {
	switch p := payload.(type) {
	case *envelope:
		rx.ingestItems(p.Items)
		p.Items = nil
		rx.net.RecyclePayload(rx.net.ShardOf(rx.id), p)
	case envelope:
		rx.ingestItems(p.Items)
	case marker:
		// from's channel to us is drained (FIFO: everything it sent before
		// the tombstone was processed above this call). Certify it.
		if rx.markFail(from, rx.id) {
			rx.outbox = append(rx.outbox, item{Kind: itemFail, Origin: from, Detector: rx.id})
		}
	}
}

// predIndex resolves a sender to its position in the ascending
// predecessor list (linear scan: d stays single-digit in every overlay
// this package targets).
func (rx *reactor) predIndex(p model.ProcID) int {
	for i, q := range rx.preds {
		if q == p {
			return i
		}
	}
	panic("allconcur: message from a non-predecessor")
}

// enqueue restores per-link FIFO: process the payload if it is the next
// expected sequence number on its link, then drain any buffered
// continuation; park it otherwise.
func (rx *reactor) enqueue(m netsim.Message) {
	pi := rx.predIndex(m.From)
	seq := seqOf(m.Payload)
	if seq != rx.expect[pi] {
		rx.reorder[pi] = append(rx.reorder[pi], heldPayload{seq: seq, payload: m.Payload})
		return
	}
	rx.ingest(m.From, m.Payload)
	rx.expect[pi]++
	buf := rx.reorder[pi]
	for drained := true; drained; {
		drained = false
		for i := range buf {
			if buf[i].seq != rx.expect[pi] {
				continue
			}
			p := buf[i].payload
			last := len(buf) - 1
			buf[i] = buf[last]
			buf[last] = heldPayload{} // drop the payload reference
			buf = buf[:last]
			rx.ingest(m.From, p)
			rx.expect[pi]++
			drained = true
			break
		}
	}
	rx.reorder[pi] = buf
}

func seqOf(payload any) uint32 {
	switch p := payload.(type) {
	case *envelope:
		return p.Seq
	case envelope:
		return p.Seq
	case marker:
		return p.Seq
	}
	panic("allconcur: unknown payload type")
}

// flushNow sends the outbox as one envelope per successor (shared item
// slice) and clears it. The handler only enqueues intent: the item batch
// is boxed ONCE, each per-successor entry rides the network's burst path
// (BurstSendVia), and envelope assembly — the per-successor header around
// the shared slice — happens inside the expansion job, off the execution
// token, from the recipient shard's payload pool.
func (rx *reactor) flushNow() {
	rx.flushPending = false
	if len(rx.outbox) == 0 {
		return
	}
	items := rx.outbox
	rx.outbox = nil
	var ctx any = items
	for k, s := range rx.succ {
		rx.net.BurstSendVia(rx.id, s, envBuilder{}, ctx, uint64(rx.sendSeq[k]))
		rx.sendSeq[k]++
	}
}

// complete reports whether every origin is accounted for: delivered, or
// provably undeliverable (excludable). The crash-free fast path never
// walks a closure, and the interval set hands back only the gaps — the
// old per-origin scan was Θ(n) per invocation.
func (rx *reactor) complete() bool {
	n := rx.g.N()
	if rx.delivered.Count() == n {
		return true
	}
	return rx.delivered.EachMissing(uint32(n), func(q uint32) bool {
		return rx.excludable(model.ProcID(q))
	})
}

// excludable resolves the suspect closure of missing origin q: every
// process that may hold q's value undelivered must be known crashed, and
// every channel out of one must be certified drained (FAIL received) or
// lead to another member of the closure. Any live successor with an
// uncertified channel means q's value may still be in flight.
func (rx *reactor) excludable(q model.ProcID) bool {
	inC := map[model.ProcID]bool{q: true}
	stack := []model.ProcID{q}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		drained := rx.fails[f]
		if drained == nil {
			return false // f not known crashed: its value may simply be slow
		}
		for k, s := range rx.g.Succ(f) {
			if drained.has(k) {
				continue // s certified the f→s drain without surfacing q's value
			}
			if rx.fails[s] != nil {
				if !inC[s] {
					inC[s] = true
					stack = append(stack, s)
				}
				continue // s crashed too: chase what s may have forwarded
			}
			return false // s is live and f→s is not certified drained yet
		}
	}
	return true
}

// React runs one invocation: first-invocation setup (flood own value, arm
// the crash), FIFO-ordered ingestion of every deliverable message, the
// termination check (with its mandatory final flush), and outbox flush
// scheduling.
//
// Deciding does NOT retire the reactor. A retired reactor's inbox closes,
// so a victim's tombstone marker landing at an already-decided successor
// s would silently vanish — FAIL(victim, s) would never exist and any
// process still missing the victim's value could block forever despite
// crashes < κ(G). Instead the decision is recorded once and the reactor
// stays in a relay-only mode — draining its inbox and re-flooding novel
// news — until the run quiesces (the final aborted invocation retires it
// with the recorded result intact).
func (rx *reactor) React(aborted bool) bool {
	if rx.done {
		return true
	}
	if aborted {
		if rx.decided {
			rx.done = true // quiescence: the relay-only tail is over
			return true
		}
		return rx.finish(sim.StatusBlocked, "")
	}
	if !rx.started {
		rx.started = true
		if rx.victim {
			if rx.crashAt <= 0 {
				return rx.crash() // dies before proposing anything
			}
			rx.h.WakeAfter(rx.crashAt)
		}
		rx.deliver(rx.id, rx.value)
		rx.outbox = append(rx.outbox, item{Kind: itemVal, Origin: rx.id, Value: rx.value})
		rx.flushNow() // own value leaves immediately, never batched
	}
	if rx.victim && rx.h.Now() >= rx.crashAt {
		if rx.decided {
			// Crashing after deciding: still emit the tombstones so each
			// successor certifies the drain, but keep the recorded decision —
			// the crash merely ends the relay-only tail.
			rx.emitMarkers()
			rx.done = true
			return true
		}
		return rx.crash()
	}
	for {
		m, ok, _ := rx.net.ReceiveNow(rx.id)
		if !ok {
			break
		}
		rx.enqueue(m)
	}
	if !rx.decided && rx.complete() {
		rx.flushNow() // mandatory: successors may still need this news
		rx.ctr.ObserveRound(1)
		*rx.store = ProcResult{Status: sim.StatusDecided, Decision: rx.minValue, Delivered: rx.delivered.Count()}
		rx.decided = true
		return false
	}
	if rx.flushPending && rx.h.Now() >= rx.flushAt {
		rx.flushNow()
	}
	if len(rx.outbox) > 0 && !rx.flushPending {
		rx.flushPending = true
		rx.flushAt = rx.h.Now() + rx.flushDelay
		rx.h.WakeAfter(rx.flushDelay)
	}
	return false
}

// Run executes one atomic-broadcast instance and returns per-process
// outcomes.
func Run(cfg Config) (*Result, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: need at least two processes, have %d", ErrBadConfig, cfg.N)
	}
	if len(cfg.Proposals) != cfg.N {
		return nil, fmt.Errorf("%w: %d proposals for %d processes", ErrBadConfig, len(cfg.Proposals), cfg.N)
	}
	if cfg.Engine != sim.EngineVirtual {
		return nil, fmt.Errorf("%w: allconcur is an inline handler protocol; it runs only on the virtual engine", ErrBadConfig)
	}
	if cfg.Body == sim.BodyCoroutine {
		return nil, fmt.Errorf("%w: allconcur has no coroutine body form", ErrBadConfig)
	}
	if err := cfg.Crashes.ValidateFor(cfg.N); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Crashes.HasStepPoints() {
		return nil, fmt.Errorf("%w: allconcur honors only timed crash plans", ErrBadConfig)
	}
	g, err := cfg.Spec.Build(cfg.N, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	flushDelay := cfg.FlushDelay
	if flushDelay <= 0 {
		flushDelay = DefaultFlushDelay
	}
	crashAt := make(map[model.ProcID]time.Duration, 2)
	for _, tc := range cfg.Crashes.Timed() {
		crashAt[tc.P] = tc.At
	}

	var ctr metrics.Counters
	var nw *netsim.Network
	procs := make([]ProcResult, cfg.N)
	dcfg := driver.Config{
		Engine:         cfg.Engine,
		MaxVirtualTime: cfg.MaxVirtualTime,
		MaxSteps:       cfg.MaxSteps,
		Workers:        cfg.Workers,
		Complexity:     sim.StepsLinear,
		// Crashes stay out of the driver config on purpose: a driver crash
		// closes the victim's inbox at the instant, but the tombstone
		// protocol needs the victim to emit its markers itself.
	}
	newNet := driver.StandardNet(&nw, cfg.N, uint64(cfg.Seed)^0x93d1_4af2_0e67_b85c, &ctr, cfg.MinDelay, cfg.MaxDelay, cfg.NetOptions...)
	// All reactor hot state comes from three pooled backing arrays (the
	// reactors themselves, 2·|E| link sequence counters, |E| reorder-buffer
	// headers) — per-process map and slice allocations previously dominated
	// setup and resident memory at n≥16k.
	rxs := make([]reactor, cfg.N)
	seqPool := make([]uint32, 2*g.Edges())
	bufPool := make([][]heldPayload, g.Edges())
	out, err := driver.RunHandlers(dcfg, cfg.N, newNet, func(i int, h *driver.Handle) driver.Reactor {
		id := model.ProcID(i)
		at, victim := crashAt[id]
		succ, preds := g.Succ(id), g.Pred(id)
		sendSeq := seqPool[:len(succ):len(succ)]
		seqPool = seqPool[len(succ):]
		expect := seqPool[:len(preds):len(preds)]
		seqPool = seqPool[len(preds):]
		reorder := bufPool[:len(preds):len(preds)]
		bufPool = bufPool[len(preds):]
		rxs[i] = reactor{
			id:         id,
			h:          h,
			net:        nw,
			ctr:        &ctr,
			g:          g,
			succ:       succ,
			preds:      preds,
			value:      cfg.Proposals[i],
			store:      &procs[i],
			victim:     victim,
			crashAt:    at,
			sendSeq:    sendSeq,
			expect:     expect,
			reorder:    reorder,
			flushDelay: flushDelay,
		}
		return &rxs[i]
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Procs: procs, Metrics: ctr.Read()}
	res.Elapsed = out.Elapsed
	res.VirtualTime = out.VirtualTime
	res.Steps = out.Steps
	res.Quiesced = out.Quiesced
	res.DeadlineExceeded = out.DeadlineExceeded
	res.StepsExceeded = out.StepsExceeded
	res.Sched = out.Sched
	return res, nil
}
