package allconcur

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"allforone/internal/failures"
	"allforone/internal/model"
	"allforone/internal/overlay"
	"allforone/internal/sim"
)

func proposals(n int) []string {
	ps := make([]string, n)
	for i := range ps {
		ps[i] = fmt.Sprintf("v%d", i)
	}
	return ps
}

func baseConfig(n int, spec overlay.Spec) Config {
	return Config{
		N:         n,
		Proposals: proposals(n),
		Spec:      spec,
		Seed:      42,
		MinDelay:  0,
		MaxDelay:  200 * time.Microsecond,
	}
}

func timedCrashes(t *testing.T, n int, at time.Duration, victims ...model.ProcID) *failures.Schedule {
	t.Helper()
	s := failures.NewSchedule(n)
	for _, p := range victims {
		if err := s.SetTimed(p, at); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCrashFreeDecidesMinOriginOnAllFamilies(t *testing.T) {
	specs := []overlay.Spec{
		{Kind: overlay.KindDeBruijn, Degree: 3},
		{Kind: overlay.KindCirculant, Degree: 3},
		{Kind: overlay.KindRandom, Degree: 3, Seed: 7},
	}
	for _, spec := range specs {
		res, err := Run(baseConfig(33, spec))
		if err != nil {
			t.Fatalf("%v: %v", spec.Kind, err)
		}
		for p, pr := range res.Procs {
			if pr.Status != sim.StatusDecided {
				t.Fatalf("%v: proc %d status %v, want decided", spec.Kind, p, pr.Status)
			}
			if pr.Decision != "v0" {
				t.Fatalf("%v: proc %d decided %q, want v0 (smallest origin)", spec.Kind, p, pr.Decision)
			}
			if pr.Delivered != 33 {
				t.Fatalf("%v: proc %d delivered %d of 33", spec.Kind, p, pr.Delivered)
			}
		}
	}
}

// TestSurvivorsAgreeUnderMinorityCrashes: with κ(circulant d=3) = 3, any
// two crashes leave the live subgraph strongly connected; every survivor
// must terminate via the exclusion rule and all must decide alike.
func TestSurvivorsAgreeUnderMinorityCrashes(t *testing.T) {
	n := 7
	for _, at := range []time.Duration{0, 50 * time.Microsecond, 300 * time.Microsecond} {
		cfg := baseConfig(n, overlay.Spec{Kind: overlay.KindCirculant, Degree: 3})
		cfg.Crashes = timedCrashes(t, n, at, 0, 6)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("at=%v: %v", at, err)
		}
		var decision string
		for p, pr := range res.Procs {
			if p == 0 || p == 6 {
				// A victim whose instant falls after its completion decides
				// first — a legitimate execution (it is then held to the
				// agreement check below like any decider). Before the flush
				// delay has even elapsed (at ≤ 50µs here), completion is
				// impossible and the crash must win.
				if pr.Status == sim.StatusDecided && at > DefaultFlushDelay {
					// falls through to the agreement check
				} else if pr.Status != sim.StatusCrashed {
					t.Fatalf("at=%v: victim %d status %v, want crashed", at, p, pr.Status)
				} else {
					continue
				}
			}
			if pr.Status != sim.StatusDecided {
				t.Fatalf("at=%v: survivor %d status %v (delivered %d), want decided", at, p, pr.Status, pr.Delivered)
			}
			if decision == "" {
				decision = pr.Decision
			} else if pr.Decision != decision {
				t.Fatalf("at=%v: survivor %d decided %q, earlier survivor %q", at, p, pr.Decision, decision)
			}
		}
		// Validity: the decision is some process's proposal.
		valid := false
		for _, v := range cfg.Proposals {
			if v == decision {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("at=%v: decision %q is no proposal", at, decision)
		}
	}
}

// TestInstantCrashExcludesVictimsValue: victims crashing at t=0 never
// propose; survivors must exclude them and decide the smallest LIVE
// origin's value.
func TestInstantCrashExcludesVictimsValue(t *testing.T) {
	n := 7
	cfg := baseConfig(n, overlay.Spec{Kind: overlay.KindCirculant, Degree: 3})
	cfg.Crashes = timedCrashes(t, n, 0, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p, pr := range res.Procs {
		if p == 0 {
			continue
		}
		if pr.Status != sim.StatusDecided || pr.Decision != "v1" {
			t.Fatalf("survivor %d: status %v decision %q, want decided v1", p, pr.Status, pr.Decision)
		}
		if pr.Delivered != n-1 {
			t.Fatalf("survivor %d delivered %d, want %d (victim excluded)", p, pr.Delivered, n-1)
		}
	}
}

// TestDisconnectionBlocksIndulgently: on a ring (κ=1) one crash severs
// the live subgraph. Processes cut off from an origin must block — never
// guess — while the decided/crashed rest stays consistent: indulgence.
func TestDisconnectionBlocksIndulgently(t *testing.T) {
	// Ring 0→1→2→3→0; crashing 2 at t=0 leaves 1 unable to reach 3 and 0.
	n := 4
	cfg := baseConfig(n, overlay.Spec{Kind: overlay.KindCirculant, Degree: 1})
	cfg.Crashes = timedCrashes(t, n, 0, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiesced {
		t.Fatalf("run did not quiesce: %+v", res)
	}
	if got := res.Procs[2].Status; got != sim.StatusCrashed {
		t.Fatalf("victim status %v, want crashed", got)
	}
	// Process 1 still hears 0 (directly) and 3 (via 0): it can exclude 2
	// and decide. Processes 0 and 3 never hear 1's value — 1's only
	// successor was the victim — and 1 is live, so they must block.
	if got := res.Procs[1].Status; got != sim.StatusDecided {
		t.Fatalf("proc 1 status %v, want decided", got)
	}
	if got := res.Procs[1].Decision; got != "v0" {
		t.Fatalf("proc 1 decided %q, want v0", got)
	}
	for _, p := range []int{0, 3} {
		if got := res.Procs[p].Status; got != sim.StatusBlocked {
			t.Fatalf("proc %d status %v, want blocked (cut off from origin 1)", p, got)
		}
	}
}

// TestDeterministicReplay: same Config, bit-identical Result.
func TestDeterministicReplay(t *testing.T) {
	cfg := baseConfig(64, overlay.Spec{Kind: overlay.KindDeBruijn, Degree: 4})
	cfg.Crashes = timedCrashes(t, 64, 120*time.Microsecond, 9, 33)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestEnvelopeCountStaysSubQuadratic pins the batching design: flushing
// news as shared-slice envelopes keeps the measured message count near
// n·d per dissemination wave — far under the n² of an all-to-all round.
func TestEnvelopeCountStaysSubQuadratic(t *testing.T) {
	n, d := 128, 4
	cfg := baseConfig(n, overlay.Spec{Kind: overlay.KindDeBruijn, Degree: d})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for p, pr := range res.Procs {
		if pr.Status != sim.StatusDecided {
			t.Fatalf("proc %d status %v", p, pr.Status)
		}
	}
	if quad := int64(n) * int64(n); res.Metrics.MsgsSent >= quad {
		t.Fatalf("MsgsSent = %d is not sub-quadratic (n² = %d)", res.Metrics.MsgsSent, quad)
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	good := baseConfig(8, overlay.Spec{Kind: overlay.KindDeBruijn, Degree: 2})
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"too few procs", func(c *Config) { c.N = 1; c.Proposals = c.Proposals[:1] }},
		{"proposal count", func(c *Config) { c.Proposals = c.Proposals[:3] }},
		{"realtime engine", func(c *Config) { c.Engine = sim.EngineRealtime }},
		{"coroutine body", func(c *Config) { c.Body = sim.BodyCoroutine }},
		{"step-point crashes", func(c *Config) {
			s := failures.NewSchedule(c.N)
			if err := s.Set(0, failures.Crash{At: failures.Point{Round: 1, Phase: 1, Stage: failures.StageRoundStart}}); err != nil {
				t.Fatal(err)
			}
			c.Crashes = s
		}},
		{"oversized crash schedule", func(c *Config) {
			s := failures.NewSchedule(64)
			if err := s.SetTimed(33, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			c.Crashes = s
		}},
		{"bad overlay", func(c *Config) { c.Spec = overlay.Spec{Kind: overlay.KindDeBruijn, Degree: 1} }},
	}
	for _, tc := range cases {
		cfg := good
		tc.mut(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}
