package allconcur

import (
	"allforone/internal/protocol"
	"allforone/internal/sim"
)

// ProtocolName is the registry name of the AllConcur-style broadcast.
const ProtocolName = "allconcur"

func init() {
	protocol.MustRegister(protocol.New(protocol.Info{
		Name:         ProtocolName,
		Description:  "leaderless atomic broadcast over a sparse overlay (AllConcur-style early termination)",
		Proposals:    protocol.ProposalsValues,
		HasNetwork:   true,
		TimedCrashes: true,
		NeedsOverlay: true,
		SubQuadratic: true,
		VirtualOnly:  true,
	}, runScenario))
}

func runScenario(sc *protocol.Scenario) (*protocol.Outcome, error) {
	n, err := sc.Topology.Procs()
	if err != nil {
		return nil, err
	}
	netOpts, err := sc.NetOptions(n, sc.Topology.Partition)
	if err != nil {
		return nil, err
	}
	res, err := Run(Config{
		N:              n,
		Proposals:      sc.Workload.Values,
		Spec:           *sc.Topology.Overlay,
		Seed:           sc.Seed,
		Engine:         sc.Engine,
		Body:           sc.Body,
		Crashes:        sc.Faults,
		MaxVirtualTime: sc.Bounds.MaxVirtualTime,
		MaxSteps:       sc.Bounds.MaxSteps,
		Workers:        sc.Workers,
		NetOptions:     netOpts,
	})
	if err != nil {
		return nil, err
	}
	out := &protocol.Outcome{
		Protocol:         ProtocolName,
		Procs:            make([]protocol.ProcOutcome, len(res.Procs)),
		Metrics:          res.Metrics,
		Elapsed:          res.Elapsed,
		VirtualTime:      res.VirtualTime,
		Steps:            res.Steps,
		Quiesced:         res.Quiesced,
		DeadlineExceeded: res.DeadlineExceeded,
		StepsExceeded:    res.StepsExceeded,
		Sched:            res.Sched,
		Raw:              res,
	}
	for i, pr := range res.Procs {
		po := protocol.ProcOutcome{Status: pr.Status}
		if pr.Status == sim.StatusDecided {
			po.Decision = pr.Decision
			po.Round = 1 // atomic broadcast is a single logical round
		}
		out.Procs[i] = po
	}
	return out, nil
}
