package allconcur

import (
	"testing"
	"time"

	"allforone/internal/driver"
	"allforone/internal/metrics"
	"allforone/internal/model"
	"allforone/internal/netsim"
	"allforone/internal/overlay"
	"allforone/internal/sim"
)

// lateVictimStub plays process 0 of a 3-process complete digraph: it
// floods its value at t=0 like a real reactor, then crashes LATE —
// emitting its tombstone markers at 1ms, long after its successors have
// decided — while recording every envelope that flows back, so the test
// can see whether the decided successors still turned the markers into
// FAIL(0,·) certificates.
type lateVictimStub struct {
	h       *driver.Handle
	net     *netsim.Network
	started bool
	marked  bool
	sawFail *bool
}

func (s *lateVictimStub) React(aborted bool) bool {
	if aborted {
		return true
	}
	if !s.started {
		s.started = true
		items := []item{{Kind: itemVal, Origin: 0, Value: "v0"}}
		s.net.Send(0, 1, envelope{Seq: 0, Items: items})
		s.net.Send(0, 2, envelope{Seq: 0, Items: items})
		s.h.WakeAfter(time.Millisecond)
	}
	for {
		m, ok, _ := s.net.ReceiveNow(0)
		if !ok {
			break
		}
		// Real reactors flush pooled *envelope payloads; accept the value
		// form too (this stub sends it).
		var items []item
		switch env := m.Payload.(type) {
		case *envelope:
			items = env.Items
		case envelope:
			items = env.Items
		default:
			continue
		}
		for _, it := range items {
			if it.Kind == itemFail && it.Origin == 0 {
				*s.sawFail = true
			}
		}
	}
	if !s.marked && s.h.Now() >= time.Millisecond {
		s.marked = true
		s.net.Send(0, 1, marker{Seq: 1})
		s.net.Send(0, 2, marker{Seq: 1})
	}
	return false
}

// TestDecidedReactorCertifiesLateMarker pins the relay-only decided mode:
// a tombstone marker landing at a successor AFTER that successor decided
// must still produce a FAIL(victim, successor) certificate. If deciding
// retired the reactor (closing its inbox), the marker would be dropped
// silently and any process still missing the victim's value could never
// resolve the suspect closure — blocking forever despite crashes < κ(G).
// Process 0 is a scripted victim whose markers arrive ~1ms after
// processes 1 and 2 decide; the test asserts a FAIL(0,·) item flows back
// to it.
func TestDecidedReactorCertifiesLateMarker(t *testing.T) {
	g, err := overlay.Spec{Kind: overlay.KindCirculant, Degree: 2}.Build(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var (
		ctr     metrics.Counters
		nw      *netsim.Network
		sawFail bool
	)
	procs := make([]ProcResult, 3)
	dcfg := driver.Config{
		Engine:         sim.EngineVirtual,
		MaxVirtualTime: 50 * time.Millisecond,
		Complexity:     sim.StepsLinear,
	}
	newNet := driver.StandardNet(&nw, 3, 7, &ctr, 0, 20*time.Microsecond)
	_, err = driver.RunHandlers(dcfg, 3, newNet, func(i int, h *driver.Handle) driver.Reactor {
		id := model.ProcID(i)
		if i == 0 {
			return &lateVictimStub{h: h, net: nw, sawFail: &sawFail}
		}
		return &reactor{
			id:         id,
			h:          h,
			net:        nw,
			ctr:        &ctr,
			g:          g,
			succ:       g.Succ(id),
			preds:      g.Pred(id),
			value:      "v" + string(rune('0'+i)),
			store:      &procs[i],
			sendSeq:    make([]uint32, len(g.Succ(id))),
			expect:     make([]uint32, len(g.Pred(id))),
			reorder:    make([][]heldPayload, len(g.Pred(id))),
			flushDelay: DefaultFlushDelay,
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if procs[i].Status != sim.StatusDecided || procs[i].Decision != "v0" {
			t.Fatalf("proc %d: status %v decision %q, want decided v0", i, procs[i].Status, procs[i].Decision)
		}
	}
	if !sawFail {
		t.Fatal("no FAIL(0,·) certificate flowed back: the late tombstone was dropped by a decided successor")
	}
}
