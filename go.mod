module allforone

go 1.24
