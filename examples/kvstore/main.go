// Kvstore: a replicated key-value store on the hybrid communication model.
//
// Seven replicas across three clusters maintain a key-value map by
// replaying a shared command log. Slots of the log are agreed on with the
// hybrid multivalued machinery (the paper's Algorithm 3 under the classical
// multivalued reduction), so the store inherits the headline property:
// with a majority cluster holding one survivor, the log — and hence the
// store — keeps making progress through a majority crash.
//
// The example also exercises the companion primitive: an atomic
// multi-writer register over the same model (cluster-aware ABD), used here
// as a "current leader" pointer next to the log.
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"allforone"
)

// apply replays a command log into a map. Commands are "set key=value".
func apply(cmds []string) map[string]string {
	state := make(map[string]string)
	for _, c := range cmds {
		if c == allforone.LogNoOp {
			continue
		}
		rest, ok := strings.CutPrefix(c, "set ")
		if !ok {
			continue
		}
		if k, v, ok := strings.Cut(rest, "="); ok {
			state[k] = v
		}
	}
	return state
}

func main() {
	part := allforone.Fig1Right() // {p1} {p2..p5} {p6,p7}
	fmt.Println("replicas:", part)

	// Each replica has a queue of writes its clients submitted.
	commands := [][]string{
		{"set color=red"},
		{"set size=XL", "set price=10"},
		{"set color=blue"},
		{"set stock=7"},
		{},
		{"set price=12"},
		{"set owner=p7"},
	}

	const slots = 6
	out, err := allforone.Run(allforone.Scenario{
		Protocol: allforone.ProtocolSMR,
		Topology: allforone.Topology{Partition: part},
		Workload: allforone.Workload{Commands: commands, Slots: slots},
		Seed:     2026,
		Bounds:   allforone.Bounds{Timeout: 30 * time.Second},
	})
	if err != nil {
		log.Fatal(err) // log agreement is checked inside the smr adapter
	}
	res := out.Raw.(*allforone.LogResult)
	logs := res.CompletedLogs(slots)
	if len(logs) == 0 {
		log.Fatal("no replica completed the log")
	}
	fmt.Printf("\nagreed log (%d replicas, identical):\n", len(logs))
	for s, cmd := range logs[0] {
		display := cmd
		if cmd == allforone.LogNoOp {
			display = "(no-op)"
		}
		fmt.Printf("  slot %d: %s\n", s, display)
	}
	state := apply(logs[0])
	fmt.Println("\nmaterialized store:")
	for _, k := range []string{"color", "size", "price", "stock", "owner"} {
		if v, ok := state[k]; ok {
			fmt.Printf("  %s = %s\n", k, v)
		}
	}

	// Side channel: an atomic register (cluster-aware ABD) for the current
	// leader pointer — reads and writes survive the same failure patterns.
	reg, err := allforone.NewRegister(part, allforone.RegisterOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer reg.Shutdown()
	if err := reg.Handle(1).Write("leader=p2"); err != nil {
		log.Fatal(err)
	}
	// Crash everyone outside one member of the majority cluster…
	for _, p := range []allforone.ProcID{0, 1, 3, 4, 5, 6} {
		reg.Crash(p)
	}
	// …and the survivor still reads the pointer.
	v, err := reg.Handle(2).Read()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregister after crashing 6/7 replicas: survivor p3 reads %q\n", v)
	if err := reg.Handle(2).Write("leader=p3"); err != nil {
		log.Fatal(err)
	}
	v, _ = reg.Handle(2).Read()
	fmt.Printf("survivor takes over:                    %q\n", v)
}
