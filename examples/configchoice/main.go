// Configchoice: multivalued consensus on arbitrary values — an extension
// built on top of the paper's binary algorithms.
//
// Five coordinator replicas, split across two clusters, must agree on
// which configuration epoch to activate. Each proposes a candidate string;
// the classical multivalued-to-binary reduction (uniform reliable
// broadcast + one binary instance per candidate, here the paper's
// Algorithm 3) picks exactly one — and because the binary instances run on
// the hybrid machinery, the choice survives a majority crash as long as a
// majority cluster keeps one replica alive.
//
// Run with: go run ./examples/configchoice
package main

import (
	"fmt"
	"log"
	"time"

	"allforone"
)

func main() {
	// Cluster 1 = {r1,r2,r3} (majority), cluster 2 = {r4,r5}.
	part, err := allforone.ParsePartition("1-3/4-5")
	if err != nil {
		log.Fatal(err)
	}
	proposals := []string{
		"epoch-17/primary=r1",
		"epoch-17/primary=r2",
		"epoch-18/primary=r2",
		"epoch-17/primary=r4",
		"epoch-18/primary=r5",
	}
	fmt.Println("clusters:", part)
	for i, p := range proposals {
		fmt.Printf("  r%d proposes %q\n", i+1, p)
	}

	// Crash-free run: everyone converges on one candidate.
	sc := allforone.Scenario{
		Protocol: allforone.ProtocolMultivalued,
		Topology: allforone.Topology{Partition: part},
		Workload: allforone.Workload{Values: proposals},
		Seed:     99,
		Bounds:   allforone.Bounds{Timeout: 10 * time.Second},
	}
	res, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	val, count, ok := res.Decided()
	if !ok {
		log.Fatal("no replica decided")
	}
	fmt.Printf("\nchosen configuration: %q (%d/%d replicas, %d binary rounds, %d messages)\n",
		val, count, part.N(), res.MaxDecisionRound(), res.Metrics.MsgsSent)

	// Now the stress case: crash r2..r5, keeping only r1 in the majority
	// cluster {r1,r2,r3}. One for all: r1 still finishes the reduction.
	sched, err := allforone.CrashAllExcept(part.N(),
		allforone.CrashPoint{Round: 1, Phase: 1, Stage: allforone.StageRoundStart}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncrashing r2..r5 (4 of 5 replicas)...")
	sc.Seed = 100
	sc.Faults = sched
	res2, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	val2, _, ok := res2.Decided()
	if !ok {
		log.Fatal("survivor did not decide")
	}
	fmt.Printf("survivor r1 still activates %q — one for all, all for one.\n", val2)
}
