// Reproducible: the virtual engine's determinism and the sweep executor.
//
// The default execution engine is a discrete-event simulation on a virtual
// clock: a run is a pure function of its Config, so the same seed replays
// the same execution bit for bit — same decisions, same rounds, same
// message counts, same simulated duration. That makes single runs
// debuggable (a failing seed IS the repro) and bulk experiments cheap:
// thousands of seeded runs spread across all cores, none of them sleeping
// a single real millisecond.
//
// Run with: go run ./examples/reproducible
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"allforone"
)

func main() {
	part := allforone.Fig1Right() // n=7: {p1} {p2..p5} {p6,p7}
	sc := allforone.Scenario{
		Protocol: allforone.ProtocolHybrid,
		Topology: allforone.Topology{Partition: part},
		Workload: allforone.Workload{Binary: []allforone.Value{1, 0, 0, 1, 0, 1, 1}},
		Seed:     424242,
		Bounds:   allforone.Bounds{MaxRounds: 10_000},
		// Determinism is not limited to uniform delays: any profile — here
		// an asymmetric per-link skew — replays bit for bit.
		Profile: allforone.DistanceSkewProfile(200*time.Microsecond, 150*time.Microsecond),
	}

	// 1. Replay: two runs of one Scenario are identical, field for field.
	first, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	second, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seed %d: decided in %d rounds, %d messages, %v simulated\n",
		sc.Seed, first.MaxDecisionRound(), first.Metrics.MsgsSent, first.VirtualTime)
	fmt.Println("replay identical:", reflect.DeepEqual(first, second))

	// 2. Sweep: a thousand seeded scenarios across all cores. Outcomes
	// arrive in input order, independent of the worker pool's interleaving.
	scs := make([]allforone.Scenario, 1000)
	for i := range scs {
		scs[i] = sc
		scs[i].Seed = int64(i)
	}
	start := time.Now()
	results, err := allforone.Sweep(scs, 0)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	var rounds, msgs, simulated float64
	for _, r := range results {
		rounds += float64(r.MaxDecisionRound())
		msgs += float64(r.Metrics.MsgsSent)
		simulated += float64(r.VirtualTime)
	}
	n := float64(len(results))
	fmt.Printf("\nswept %d seeds in %v of wall clock\n", len(results), wall.Round(time.Millisecond))
	fmt.Printf("mean rounds: %.2f   mean messages: %.1f\n", rounds/n, msgs/n)
	fmt.Printf("simulated %v of network time in %v of real time\n",
		time.Duration(simulated).Round(time.Millisecond), wall.Round(time.Millisecond))
}
