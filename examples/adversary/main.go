// Adversary: turning the deterministic engine into a falsifier.
//
// PR 1–3 made every run a pure function of its Scenario — which means a
// schedule is now a first-class, replayable object. This walkthrough uses
// internal/adversary to SEARCH schedule space instead of sampling it:
// mutate per-link delay matrices (the delivery order), jitter crash
// instants, and hop seeds, keeping whatever schedule maximizes an
// objective. Three things to take away:
//
//  1. The worst case is far from the average case: a few hundred probes
//     typically find schedules several times more expensive than the mean.
//  2. Every finding is a complete Scenario — re-running it reproduces the
//     outcome bit for bit. The counterexample IS the repro.
//  3. Budget exhaustion (bounded-out) is reported separately from genuine
//     non-decision, so a search can't mistake a short leash for a liveness
//     violation.
//
// Run with: go run ./examples/adversary
package main

import (
	"fmt"
	"log"
	"reflect"
	"time"

	"allforone"
	"allforone/internal/adversary"
	"allforone/internal/protocol"
)

func main() {
	// The frame under attack: hybrid consensus at n=8 in three clusters,
	// mixed proposals, one timed crash for the jitter strategy to move.
	part, err := allforone.ParsePartition("1-3/4-6/7-8")
	if err != nil {
		log.Fatal(err)
	}
	faults := allforone.NewSchedule(part.N())
	if err := faults.SetTimed(7, 300*time.Microsecond); err != nil {
		log.Fatal(err)
	}
	base := allforone.Scenario{
		Protocol: allforone.ProtocolHybrid,
		Topology: allforone.Topology{Partition: part},
		Workload: allforone.Workload{Binary: []allforone.Value{0, 1, 0, 1, 0, 1, 0, 1}},
		Faults:   faults,
		Seed:     1,
		Bounds:   allforone.Bounds{MaxRounds: 100_000},
	}

	// Baseline: what does an AVERAGE schedule cost? (A quick seed sweep.)
	scs := make([]allforone.Scenario, 200)
	for i := range scs {
		scs[i] = base
		scs[i].Seed = int64(i + 1)
	}
	outs, err := allforone.Sweep(scs, 0)
	if err != nil {
		log.Fatal(err)
	}
	var meanSteps float64
	for _, o := range outs {
		meanSteps += float64(o.Steps)
	}
	meanSteps /= float64(len(outs))
	fmt.Printf("baseline: mean %.0f scheduler steps over %d random schedules\n", meanSteps, len(outs))

	// The search: 1000 probes of combined seed/skew/crash mutation,
	// maximizing scheduler steps. Deterministic — same Config, same Report.
	start := time.Now()
	rep, err := adversary.Search(adversary.Config{
		Base:      base,
		Strategy:  adversary.DefaultStrategy(200 * time.Microsecond),
		Objective: adversary.Steps(),
		Budget:    1000,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	w := rep.Worst
	fmt.Printf("search:   %d probes in %v — %d decided, %d undecided, %d bounded-out, %d violations\n",
		rep.Probes, time.Since(start).Round(time.Millisecond),
		rep.Decided, rep.Undecided, rep.BoundedOut, rep.Violations)
	fmt.Printf("worst:    probe %d, %.0f steps (%.1fx the mean), %d rounds, %v virtual\n",
		w.Probe, w.Score, w.Score/meanSteps, w.Outcome.MaxDecisionRound(), w.Outcome.VirtualTime)

	// The counterexample is self-contained: seed, crash plan, and — when
	// the skew strategy won — an explicit per-link delay matrix.
	if entries, ok := protocol.SkewMatrixEntries(w.Scenario.Profile); ok {
		fmt.Printf("schedule: %dx%d skew matrix, crashes", len(entries), len(entries))
	} else {
		fmt.Printf("schedule: profile %v, crashes", w.Scenario.Profile)
	}
	for _, tc := range w.Scenario.Faults.Timed() {
		fmt.Printf(" %v@%v", tc.P, tc.At)
	}
	fmt.Printf(", seed %d\n", w.Scenario.Seed)

	// Replay contract: the emitted Scenario reproduces bit for bit.
	again, _, err := w.Replay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replay:   identical outcome:", reflect.DeepEqual(w.Outcome, again))
}
