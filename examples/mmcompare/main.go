// mmcompare: the hybrid model vs the m&m model (paper §III-C, appendix).
//
// The m&m model of Aguilera et al. (PODC 2018) induces shared memories
// from a graph: process p_i owns a memory shared with its neighbors, so
// memories overlap and each process must touch α_i + 1 consensus objects
// per phase (its own plus one per neighbor). The paper's hybrid model
// partitions processes into disjoint clusters instead: exactly one
// consensus object per process per phase, m objects system-wide.
//
// This example measures both on comparable 5-process topologies — the
// paper's Figure-2 graph for m&m, a 2-cluster partition for hybrid — and
// then demonstrates the qualitative difference: the hybrid model's
// one-for-all closure survives a majority crash; the m&m model does not.
//
// Run with: go run ./examples/mmcompare
package main

import (
	"fmt"
	"log"
	"time"

	"allforone"
)

func main() {
	const n = 5
	unanimous := make([]allforone.Value, n)
	for i := range unanimous {
		unanimous[i] = allforone.One
	}

	// --- Cost accounting on crash-free unanimous runs (1 round). ---
	fmt.Println("== consensus-object cost per phase (crash-free, 1 round) ==")

	graph := allforone.Fig2Graph()
	fmt.Println("m&m memory domains:", graph)
	// The m&m topology is declarative too: the graph travels as an edge
	// list in the scenario.
	mmScenario := allforone.Scenario{
		Protocol: allforone.ProtocolMM,
		Topology: allforone.Topology{N: n, MMEdges: graph.EdgeList()},
		Workload: allforone.Workload{Binary: unanimous},
		Seed:     3,
		Bounds:   allforone.Bounds{MaxRounds: 10, Timeout: 10 * time.Second},
	}
	mres, err := allforone.Run(mmScenario)
	if err != nil {
		log.Fatal(err)
	}
	// 2 phases in round 1: per-phase = total / 2.
	fmt.Printf("m&m:    %d objects touched, %d propose() calls per phase (α_i+1 per process)\n",
		graph.ObjectsPerPhase(), mres.Metrics.ConsInvocations/2)

	part, err := allforone.ParsePartition("1-3/4-5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hybrid clusters:   ", part)
	hybridScenario := allforone.Scenario{
		Protocol:  allforone.ProtocolHybrid,
		Topology:  allforone.Topology{Partition: part},
		Workload:  allforone.Workload{Binary: unanimous},
		Algorithm: allforone.AlgoLocalCoin,
		Seed:      3,
		Bounds:    allforone.Bounds{MaxRounds: 10, Timeout: 10 * time.Second},
	}
	hres, err := allforone.Run(hybridScenario)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid: %d objects touched, %d propose() calls per phase (exactly 1 per process)\n\n",
		part.M(), hres.Metrics.ConsInvocations/2)

	// --- The qualitative gap: majority crash. ---
	fmt.Println("== majority crash: 3 of 5 processes die at round 1 ==")
	crashAt := allforone.CrashPoint{Round: 1, Phase: 1, Stage: allforone.StageRoundStart}

	// Hybrid: p1 survives in cluster {p1,p2,p3} (3 > 5/2) — decides.
	hsched, err := allforone.CrashAllExcept(n, crashAt, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	hybridScenario.Seed = 5
	hybridScenario.Faults = hsched
	hybridScenario.Bounds.MaxRounds = 100
	hres2, err := allforone.Run(hybridScenario)
	if err != nil {
		log.Fatal(err)
	}
	val, count, _ := hres2.Decided()
	fmt.Printf("hybrid: survivors decide %v (%d deciders) — cluster closure covers %d ≥ majority\n",
		val, count, part.Size(0))

	// m&m: same crash set; survivors p1, p4 cover only themselves.
	msched, err := allforone.CrashAllExcept(n, crashAt, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	mmScenario.Seed = 5
	mmScenario.Faults = msched
	mmScenario.Bounds = allforone.Bounds{Timeout: time.Second} // it blocks; bound the wait
	mres2, err := allforone.Run(mmScenario)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, decided := mres2.Decided(); decided {
		log.Fatal("unexpected: m&m decided without a correct majority")
	}
	fmt.Println("m&m:    survivors blocked after 1s — overlapping memories give no closure,")
	fmt.Println("        so a correct majority is still required (no one-for-all property).")
}
