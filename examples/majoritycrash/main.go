// Majority crash: the paper's flagship fault-tolerance scenario (§III-B,
// conclusion).
//
// Classical message-passing consensus needs a majority of correct
// processes — with 6 of 7 crashed it is hopeless. In the hybrid model, one
// surviving member of a majority cluster speaks for the whole cluster
// ("one for all and all for one"), so consensus still terminates.
//
// This example runs both systems on the same failure pattern:
//
//  1. hybrid Algorithm 2 on Figure-1 (right): survivor p3 ∈ P[2] decides;
//  2. pure message-passing Ben-Or: the survivor blocks (and is cut off by
//     a timeout), but never decides wrongly — the algorithm is indulgent.
//
// Run with: go run ./examples/majoritycrash
package main

import (
	"fmt"
	"log"
	"time"

	"allforone"
)

func main() {
	const n = 7
	survivor := allforone.ProcID(2) // p3, a member of the majority cluster P[2]
	unanimous := make([]allforone.Value, n)
	for i := range unanimous {
		unanimous[i] = allforone.One
	}
	crashAt := allforone.CrashPoint{Round: 1, Phase: 1, Stage: allforone.StageRoundStart}

	// --- Hybrid model: majority cluster with a single survivor. ---
	part := allforone.Fig1Right()
	sched, err := allforone.CrashAllExcept(n, crashAt, survivor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition:", part)
	fmt.Printf("failure pattern: crash all but %v (6 of 7 processes!)\n", survivor)
	fmt.Println("liveness condition holds:", part.LivenessHolds(sched.Crashed()))

	// One declarative Scenario describes the whole experiment; the two
	// systems differ only in the Protocol field.
	sc := allforone.Scenario{
		Protocol:  allforone.ProtocolHybrid,
		Topology:  allforone.Topology{Partition: part},
		Workload:  allforone.Workload{Binary: unanimous},
		Algorithm: allforone.AlgoLocalCoin,
		Seed:      7,
		Faults:    sched,
		Bounds:    allforone.Bounds{MaxRounds: 1000, Timeout: 10 * time.Second},
	}
	res, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	pr := res.Procs[survivor]
	fmt.Printf("hybrid:  %v decided %v at round %d — one for all!\n\n", survivor, pr.Decision, pr.Round)

	// --- Same scenario, pure message passing (Ben-Or). ---
	fmt.Println("now the same failure pattern under pure message passing (m = n)...")
	sc.Protocol = allforone.ProtocolBenOr
	sc.Algorithm = ""               // local-coin/common-coin is a hybrid-only choice
	sc.Bounds.Timeout = time.Second // it will block; bound the realtime wait
	bres, err := allforone.Run(sc)
	if err != nil {
		log.Fatal(err)
	}
	bpr := bres.Procs[survivor]
	fmt.Printf("ben-or:  %v is %v after 1s — a majority of correct processes is necessary here.\n",
		survivor, bpr.Status)
	if _, _, decided := bres.Decided(); decided {
		log.Fatal("unexpected: Ben-Or decided without a correct majority")
	}
	fmt.Println("         (and it never decided wrongly: the algorithm is indulgent)")
}
