// Datacenter: a realistic deployment of the hybrid communication model.
//
// Three sites host 4 + 3 + 3 = 10 replicas. Replicas within a site share
// memory (the site's cluster); sites communicate over a wide-area network
// with millisecond-scale delays. The replicas must agree on a binary
// choice — say, whether to commit a cross-site transaction.
//
// The example shows the model's selling points end to end:
//
//   - intra-site agreement is one shared-memory consensus operation per
//     replica per phase — no WAN round-trips wasted on local coordination;
//   - a whole site can burn down (here: every replica of site C plus one
//     of site A crash mid-protocol) and consensus still terminates,
//     because the surviving sites cover a majority of replicas;
//   - the decision is reached in a handful of WAN rounds even with
//     adversarially split initial votes.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"time"

	"allforone"
)

func main() {
	// Site A: replicas 1-4, site B: replicas 5-7, site C: replicas 8-10.
	part, err := allforone.ParsePartition("1-4/5-7/8-10")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sites:", part)

	// Split vote: site A wants to commit (1), sites B and C to abort (0).
	proposals := []allforone.Value{
		allforone.One, allforone.One, allforone.One, allforone.One, // site A
		allforone.Zero, allforone.Zero, allforone.Zero, // site B
		allforone.Zero, allforone.Zero, allforone.Zero, // site C
	}

	// Disaster strikes mid-protocol: all of site C crashes during round 1,
	// plus one replica of site A. Sites A and B keep one survivor each, so
	// the liveness condition holds: |A| + |B| = 7 > 10/2.
	sched := allforone.NewSchedule(part.N())
	for _, p := range []allforone.ProcID{7, 8, 9} { // site C
		if err := sched.Set(p, allforone.Crash{
			At: allforone.CrashPoint{Round: 1, Phase: 1, Stage: allforone.StageMidBroadcast},
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sched.Set(0, allforone.Crash{ // one replica of site A
		At: allforone.CrashPoint{Round: 1, Phase: 1, Stage: allforone.StageAfterExchange},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("failure: site C wiped mid-broadcast, one site-A replica gone")
	fmt.Println("liveness condition holds:", part.LivenessHolds(sched.Crashed()))

	// The network is a first-class part of the scenario: replicas inside a
	// site exchange messages in tens of microseconds, while cross-site
	// traffic pays a millisecond-scale WAN base delay plus jitter.
	res, err := allforone.Run(allforone.Scenario{
		Protocol:  allforone.ProtocolHybrid,
		Topology:  allforone.Topology{Partition: part},
		Workload:  allforone.Workload{Binary: proposals},
		Algorithm: allforone.AlgoCommonCoin, // expected 2 WAN rounds after stabilizing
		Seed:      2024,
		Faults:    sched,
		Profile: allforone.ClusterWANProfile(
			50*time.Microsecond, // intra-site
			2*time.Millisecond,  // cross-site base
			time.Millisecond,    // cross-site jitter
		),
		Bounds: allforone.Bounds{MaxRounds: 1000, Timeout: 30 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}

	if !res.AllLiveDecided() {
		log.Fatal("a surviving replica failed to decide")
	}
	val, count, ok := res.Decided()
	if !ok {
		log.Fatal("no replica decided")
	}
	verdict := "COMMIT"
	if val == "0" {
		verdict = "ABORT"
	}
	fmt.Printf("\ndecision: %s (value %v), reached by %d surviving replicas\n", verdict, val, count)
	// Under the default virtual engine, Elapsed is simulated WAN time: the
	// run models milliseconds of transit while completing in microseconds
	// of real time, deterministically.
	fmt.Printf("rounds: %d   WAN messages: %d   shared-memory ops: %d   simulated time: %v\n",
		res.MaxDecisionRound(), res.Metrics.MsgsSent, res.Metrics.ConsInvocations,
		res.Elapsed.Round(time.Millisecond))

	for i, pr := range res.Procs {
		site := "A"
		if i >= 7 {
			site = "C"
		} else if i >= 4 {
			site = "B"
		}
		fmt.Printf("  site %s replica p%-2d: %v", site, i+1, pr.Status)
		if pr.Status == allforone.StatusDecided {
			fmt.Printf(" %v at round %d", pr.Decision, pr.Round)
		}
		fmt.Println()
	}
}
