// Quickstart: solve binary consensus in the hybrid communication model
// through the Scenario API.
//
// A Scenario declaratively describes one run — which protocol (by registry
// name), on which topology, with which workload, under which faults and
// network profile — and allforone.Run executes it. Here: seven processes
// in the paper's Figure-1 (right) layout — P[1]={p1}, P[2]={p2..p5},
// P[3]={p6,p7} — propose a mix of 0s and 1s. Because P[2] holds a
// majority of processes and agrees internally through its shared-memory
// consensus object, its value is championed by more than n/2 supporters
// at every process, so everyone decides it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"allforone"
)

func main() {
	part := allforone.Fig1Right()
	fmt.Println("partition:", part)

	// P[2] = {p2..p5} proposes 0; the minority clusters propose 1.
	proposals := []allforone.Value{
		allforone.One,  // p1
		allforone.Zero, // p2 ┐
		allforone.Zero, // p3 │ the majority cluster P[2]
		allforone.Zero, // p4 │
		allforone.Zero, // p5 ┘
		allforone.One,  // p6
		allforone.One,  // p7
	}

	res, err := allforone.Run(allforone.Scenario{
		Protocol:  allforone.ProtocolHybrid,
		Topology:  allforone.Topology{Partition: part},
		Workload:  allforone.Workload{Binary: proposals},
		Algorithm: allforone.AlgoLocalCoin, // Algorithm 2 (Ben-Or extension)
		Seed:      42,
		Bounds:    allforone.Bounds{MaxRounds: 1000},
	})
	if err != nil {
		log.Fatal(err)
	}

	val, count, ok := res.Decided()
	if !ok {
		log.Fatal("no process decided")
	}
	fmt.Printf("decision: %v (by %d/%d processes, %d round(s), %d messages)\n",
		val, count, part.N(), res.MaxDecisionRound(), res.Metrics.MsgsSent)

	for i, pr := range res.Procs {
		fmt.Printf("  p%d: %v %v at round %d\n", i+1, pr.Status, pr.Decision, pr.Round)
	}

	// The same scenario runs any registered protocol: switch Protocol to
	// "benor" and the identical description drives pure message passing.
	fmt.Println("\nregistered protocols:")
	for _, info := range allforone.Protocols() {
		fmt.Printf("  %-12s %s\n", info.Name, info.Description)
	}

	// Beyond broadcast: the sparse-overlay family scales to populations no
	// all-to-all protocol can touch. One rumor source among n=1000
	// processes on a de Bruijn overlay infects everyone in Θ(n·d·log n)
	// messages — not the Θ(n²) per round of the protocols above.
	const n = 1000
	rumor := make([]allforone.Value, n) // all Zero except one source
	rumor[0] = allforone.One
	gout, err := allforone.Run(allforone.Scenario{
		Protocol: allforone.ProtocolGossip,
		Topology: allforone.Topology{
			N:       n,
			Overlay: &allforone.OverlaySpec{Kind: allforone.OverlayDeBruijn, Degree: allforone.DefaultOverlayDegree(n)},
		},
		Workload: allforone.Workload{Binary: rumor},
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	gval, gcount, _ := gout.Decided()
	fmt.Printf("\ngossip at n=%d: decision %v by %d/%d processes, %d messages (n² would be %d per round)\n",
		n, gval, gcount, n, gout.Metrics.MsgsSent, n*n)
}
