package allforone

// The registry differential test: every registered protocol runs through
// Run(Scenario) on one shared scenario matrix — network profiles × crash
// patterns × both engines — and must stay safe (agreement + validity)
// everywhere, and live wherever the liveness condition holds. A second
// test replays non-uniform profiles under the virtual engine and demands
// bit-identical Outcomes.

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"allforone/internal/register"
	"allforone/internal/sim"
	"allforone/internal/smr"
)

// diffMatrixWorkload builds one Workload carrying every proposal kind, so
// a single scenario drives the whole registry.
func diffMatrixWorkload(n int) Workload {
	w := Workload{Slots: 2}
	for i := 0; i < n; i++ {
		w.Binary = append(w.Binary, Value(int8(i%2)))
		w.Values = append(w.Values, fmt.Sprintf("v%d", i%3))
		w.Commands = append(w.Commands, []string{fmt.Sprintf("cmd%d", i)})
		w.Scripts = append(w.Scripts, []ScriptOp{
			ScriptWrite(fmt.Sprintf("w%d", i)),
			ScriptRead(),
		})
	}
	return w
}

// diffProfiles returns the profile axis: immediate delivery plus three
// non-uniform policies (per-link skew, asymmetric cluster WAN, a partition
// of the first cluster healing at 1ms).
func diffProfiles() []struct {
	name string
	p    NetworkProfile
} {
	return []struct {
		name string
		p    NetworkProfile
	}{
		{"immediate", nil},
		{"uniform", UniformProfile(0, 200*time.Microsecond)},
		{"skew", DistanceSkewProfile(50*time.Microsecond, 25*time.Microsecond)},
		{"wan", ClusterWANProfile(50*time.Microsecond, 300*time.Microsecond, 50*time.Microsecond)},
		{"heal", HealingPartitionProfile(nil, time.Millisecond, 0, 100*time.Microsecond)},
	}
}

// diffFaults returns the crash-pattern axis: crash-free, and a timed
// minority crash (p1 and p7 at 300µs) that keeps the liveness condition —
// and a process majority — intact for every protocol.
func diffFaults(t *testing.T, n int) []struct {
	name string
	f    func() *Schedule
} {
	return []struct {
		name string
		f    func() *Schedule
	}{
		{"crash-free", func() *Schedule { return nil }},
		{"timed-minority", func() *Schedule {
			sched := NewSchedule(n)
			for _, p := range []ProcID{0, 6} {
				if err := sched.SetTimed(p, 300*time.Microsecond); err != nil {
					t.Fatal(err)
				}
			}
			return sched
		}},
	}
}

// mmRing returns ring edges over n processes (the differential topology
// for the graph-based m&m protocol).
func mmRing(n int) [][2]int {
	edges := make([][2]int, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	return edges
}

// diffOverlay returns the overlay spec injected for NeedsOverlay protocols:
// a circulant digraph of degree 3, whose vertex connectivity κ = 3 covers
// the matrix's two timed crashes (the overlay package pins by test that
// every 2-subset removal leaves it strongly connected).
func diffOverlay() *OverlaySpec {
	return &OverlaySpec{Kind: OverlayCirculant, Degree: 3}
}

// checkDiffOutcome applies the per-kind safety and liveness checks.
func checkDiffOutcome(t *testing.T, info ProtocolInfo, sc Scenario, out *Outcome) {
	t.Helper()
	if err := out.CheckAgreement(); err != nil {
		t.Fatal(err)
	}
	switch info.Proposals {
	case ProposalsBinary:
		if err := out.CheckValidity([]string{"0", "1"}); err != nil {
			t.Fatal(err)
		}
	case ProposalsValues:
		if err := out.CheckValidity(sc.Workload.Values); err != nil {
			t.Fatal(err)
		}
	case ProposalsCommands:
		if err := out.Raw.(*smr.Result).CheckLogValidity(sc.Workload.Commands); err != nil {
			t.Fatal(err)
		}
	case ProposalsScripts:
		res := out.Raw.(*register.Result)
		for i, pr := range res.Procs {
			for j, op := range pr.Ops {
				if pr.Status == sim.StatusDecided && !op.OK {
					t.Fatalf("proc %d completed its script but op %d failed", i, j)
				}
			}
		}
	}
	// The liveness condition holds in every matrix cell (≥ a process
	// majority survives, and the majority cluster keeps a member), so no
	// process may end blocked, and every live process must finish.
	if got := out.CountStatus(StatusBlocked); got != 0 {
		t.Fatalf("%d blocked processes: %+v", got, out.Procs)
	}
	if !out.AllLiveDecided() {
		t.Fatalf("live processes unfinished: %+v", out.Procs)
	}
}

// TestRegistryDifferential is the acceptance matrix: every registered
// protocol × ≥3 network profiles × 2 crash patterns × both engines.
func TestRegistryDifferential(t *testing.T) {
	t.Parallel()
	part := Fig1Right() // n=7; P[2] is a majority cluster
	n := part.N()

	for _, info := range Protocols() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			for _, prof := range diffProfiles() {
				if prof.p != nil && !info.HasNetwork {
					continue
				}
				for _, faults := range diffFaults(t, n) {
					for _, eng := range []Engine{EngineVirtual, EngineRealtime} {
						// Realtime runs sleep their profile delays for real;
						// skip only the slowest profile there (the heal cut
						// stalls cross traffic for a wall-clock millisecond
						// per message generation).
						if eng == EngineRealtime && prof.name == "heal" {
							continue
						}
						// Inline handler reactors have no realtime port; the
						// registry rejects the combination (covered by
						// TestRunRejectsBadScenarios).
						if eng == EngineRealtime && info.VirtualOnly {
							continue
						}
						name := fmt.Sprintf("%s/%s/%v", prof.name, faults.name, eng)
						sc := Scenario{
							Protocol: info.Name,
							Topology: Topology{Partition: part},
							Workload: diffMatrixWorkload(n),
							Faults:   faults.f(),
							Profile:  prof.p,
							Engine:   eng,
							Seed:     42,
							Bounds:   Bounds{MaxRounds: 10_000, Timeout: 20 * time.Second},
						}
						if info.NeedsGraph {
							sc.Topology.MMEdges = mmRing(n)
						}
						if info.NeedsOverlay {
							sc.Topology.Overlay = diffOverlay()
						}
						out, err := Run(sc)
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						checkDiffOutcome(t, info, sc, out)
					}
				}
			}
		})
	}
}

// TestScenarioReplayBitReproducible replays every protocol under the
// non-uniform profiles on the virtual engine: identical Scenarios must
// produce identical Outcomes, field for field — including the virtual
// clock, the step count, and every per-process result.
func TestScenarioReplayBitReproducible(t *testing.T) {
	t.Parallel()
	part := Fig1Right()
	n := part.N()
	profiles := map[string]NetworkProfile{
		"skew": DistanceSkewProfile(50*time.Microsecond, 25*time.Microsecond),
		"heal": HealingPartitionProfile(nil, time.Millisecond, 0, 100*time.Microsecond),
	}
	for _, info := range Protocols() {
		if !info.HasNetwork {
			continue
		}
		for profName, prof := range profiles {
			sched := NewSchedule(n)
			if err := sched.SetTimed(6, 300*time.Microsecond); err != nil {
				t.Fatal(err)
			}
			sc := Scenario{
				Protocol: info.Name,
				Topology: Topology{Partition: part},
				Workload: diffMatrixWorkload(n),
				Faults:   sched,
				Profile:  prof,
				Seed:     7,
				Bounds:   Bounds{MaxRounds: 10_000},
			}
			if info.NeedsGraph {
				sc.Topology.MMEdges = mmRing(n)
			}
			if info.NeedsOverlay {
				sc.Topology.Overlay = diffOverlay()
			}
			first, err := Run(sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", info.Name, profName, err)
			}
			second, err := Run(sc)
			if err != nil {
				t.Fatalf("%s/%s replay: %v", info.Name, profName, err)
			}
			if first.VirtualTime == 0 && first.Steps == 0 {
				t.Fatalf("%s/%s: virtual run reports no clock/steps", info.Name, profName)
			}
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("%s/%s: replay diverged:\n  first:  %+v\n  second: %+v", info.Name, profName, first, second)
			}
		}
	}
}

// TestRunRejectsBadScenarios covers the registry-level validation layer.
func TestRunRejectsBadScenarios(t *testing.T) {
	t.Parallel()
	part := Fig1Right()
	good := Scenario{
		Protocol: ProtocolHybrid,
		Topology: Topology{Partition: part},
		Workload: diffMatrixWorkload(part.N()),
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("baseline scenario failed: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(sc *Scenario)
	}{
		{"unknown protocol", func(sc *Scenario) { sc.Protocol = "paxos" }},
		{"missing partition", func(sc *Scenario) { sc.Topology = Topology{N: 7} }},
		{"inconsistent topology", func(sc *Scenario) { sc.Topology.N = 5 }},
		{"unknown algorithm", func(sc *Scenario) { sc.Algorithm = "quantum-coin" }},
		{"mm without edges", func(sc *Scenario) { sc.Protocol = ProtocolMM }},
		{"oversized crash schedule", func(sc *Scenario) {
			sched := NewSchedule(9)
			if err := sched.SetTimed(8, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			sc.Faults = sched
		}},
		{"profile on network-less protocol", func(sc *Scenario) {
			sc.Protocol = ProtocolSharedMem
			sc.Profile = UniformProfile(0, time.Millisecond)
		}},
		{"step crashes on register", func(sc *Scenario) {
			sc.Protocol = ProtocolRegister
			sched := NewSchedule(7)
			if err := sched.Set(0, Crash{At: CrashPoint{Round: 1, Phase: 1, Stage: StageRoundStart}}); err != nil {
				t.Fatal(err)
			}
			sc.Faults = sched
		}},
		{"trace on untraceable protocol", func(sc *Scenario) {
			sc.Protocol = ProtocolBenOr
			sc.Trace = NewTrace()
		}},
		{"gossip without overlay", func(sc *Scenario) {
			sc.Protocol = ProtocolGossip
		}},
		{"overlay spec too dense for n", func(sc *Scenario) {
			sc.Protocol = ProtocolAllConcur
			sc.Topology.Overlay = &OverlaySpec{Kind: OverlayDeBruijn, Degree: 7} // n = 7 allows at most d = 6
		}},
		{"virtual-only protocol on the realtime engine", func(sc *Scenario) {
			sc.Protocol = ProtocolGossip
			sc.Topology.Overlay = diffOverlay()
			sc.Engine = EngineRealtime
		}},
	}
	for _, tc := range cases {
		sc := good
		tc.mutate(&sc)
		if _, err := Run(sc); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
