package allforone

import (
	"allforone/internal/allconcur"
	"allforone/internal/benor"
	"allforone/internal/coin"
	"allforone/internal/core"
	"allforone/internal/failures"
	"allforone/internal/gossip"
	"allforone/internal/harness"
	"allforone/internal/mm"
	"allforone/internal/model"
	"allforone/internal/mpcoin"
	"allforone/internal/multivalued"
	"allforone/internal/overlay"
	"allforone/internal/protocol"
	"allforone/internal/register"
	"allforone/internal/shconsensus"
	"allforone/internal/sim"
	"allforone/internal/smr"
	"allforone/internal/trace"
)

// ---------------------------------------------------------------------------
// The Scenario API — the package's main entry point.
//
// A Scenario declaratively describes one run: which protocol (by registry
// name), on which topology, with which workload, under which faults and
// network profile, driven by which engine. Run compiles it onto the
// registered protocol and returns a uniform Outcome. The former Solve*
// family survives as thin deprecated wrappers below.

// Scenario declaratively describes one run; see Run.
type Scenario = protocol.Scenario

// Topology is a scenario's communication structure: a cluster Partition
// (hybrid protocols), a bare process count N (flat protocols), an m&m
// edge list MMEdges, or a sparse Overlay digraph spec (gossip, allconcur).
type Topology = protocol.Topology

// Workload holds a scenario's per-process inputs; only the field matching
// the protocol's ProposalKind is consumed.
type Workload = protocol.Workload

// Bounds caps a scenario run (rounds, instances, timeouts, virtual-time
// and step budgets).
type Bounds = protocol.Bounds

// Outcome is the uniform result of Run; ProcOutcome is one process's view.
type (
	Outcome     = protocol.Outcome
	ProcOutcome = protocol.ProcOutcome
)

// Protocol is one registered consensus implementation; ProtocolInfo is its
// registry metadata (name, proposal kind, capability flags).
type (
	Protocol     = protocol.Protocol
	ProtocolInfo = protocol.Info
)

// ProposalKind classifies the workload a protocol consumes.
type ProposalKind = protocol.ProposalKind

// The four workload shapes.
const (
	ProposalsBinary   = protocol.ProposalsBinary
	ProposalsValues   = protocol.ProposalsValues
	ProposalsCommands = protocol.ProposalsCommands
	ProposalsScripts  = protocol.ProposalsScripts
)

// Registry protocol names. Protocols() lists the full registry.
const (
	ProtocolHybrid      = core.ProtocolName
	ProtocolBenOr       = benor.ProtocolName
	ProtocolMPCoin      = mpcoin.ProtocolName
	ProtocolSharedMem   = shconsensus.ProtocolName
	ProtocolMM          = mm.ProtocolName
	ProtocolMultivalued = multivalued.ProtocolName
	ProtocolSMR         = smr.ProtocolName
	ProtocolRegister    = register.ProtocolName
	ProtocolGossip      = gossip.ProtocolName
	ProtocolAllConcur   = allconcur.ProtocolName
)

// OverlaySpec describes the sparse communication digraph of the overlay
// protocol family (Topology.Overlay): a deterministic d-regular family —
// generalized de Bruijn or circulant — or seeded random peer-sampling
// views, built identically by every process from (spec, n, seed). See
// DESIGN.md §13.
type OverlaySpec = overlay.Spec

// Overlay digraph families (OverlaySpec.Kind).
const (
	// OverlayDeBruijn: the generalized de Bruijn digraph GB(d, n) —
	// logarithmic diameter, vertex connectivity ≥ d−1.
	OverlayDeBruijn = overlay.KindDeBruijn
	// OverlayCirculant: successors i+1 … i+d (mod n) — linear diameter but
	// exact vertex connectivity d, the tightest fault budget per degree.
	OverlayCirculant = overlay.KindCirculant
	// OverlayRandom: a seeded Hamiltonian cycle plus d−1 random extra
	// successors per process — the static stand-in for peer-sampling views.
	OverlayRandom = overlay.KindRandom
)

// DefaultOverlayDegree returns the degree the overlay family defaults to
// at a given process count (≈ log₂(n)/2, the AllConcur paper's working
// range; at least 3 so small topologies keep a useful fault budget).
func DefaultOverlayDegree(n int) int { return overlay.DefaultDegree(n) }

// OverlayKind selects an overlay digraph family (OverlaySpec.Kind).
type OverlayKind = overlay.Kind

// ParseOverlayKind resolves an overlay-family name as accepted by the
// CLIs: debruijn (or db), circulant (or ring), random (or sample).
func ParseOverlayKind(name string) (OverlayKind, error) { return overlay.ParseKind(name) }

// Hybrid algorithm names (Scenario.Algorithm for ProtocolHybrid; empty
// picks AlgoCommonCoin).
const (
	AlgoLocalCoin  = core.AlgoLocalCoin
	AlgoCommonCoin = core.AlgoCommonCoin
)

// Run executes one scenario on the protocol registry — the entry point
// replacing the Solve* family. Under EngineVirtual (the default) the run
// is a pure function of the Scenario: same value, same Outcome, bit for
// bit, whatever the network profile.
func Run(sc Scenario) (*Outcome, error) { return protocol.Run(sc) }

// Protocols returns the registry metadata of every registered protocol,
// sorted by name.
func Protocols() []ProtocolInfo { return protocol.Infos() }

// LookupProtocol returns the protocol registered under name.
func LookupProtocol(name string) (Protocol, bool) { return protocol.Lookup(name) }

// Sweep runs many independent scenarios on a worker pool and returns
// outcomes in input order — the bulk entry point on top of the
// deterministic virtual engine. parallelism ≤ 0 uses all CPUs.
func Sweep(scs []Scenario, parallelism int) ([]*Outcome, error) {
	return harness.Sweep(scs, parallelism)
}

// NetworkProfile is a composable message-delay policy compiled per
// topology; see the profile constructors below and DESIGN.md §8.
type NetworkProfile = protocol.NetworkProfile

// Network profile constructors.
var (
	// UniformProfile draws every transit time uniformly from [min, max].
	UniformProfile = protocol.Uniform
	// SkewMatrixProfile fixes an explicit (possibly asymmetric) n×n
	// per-link delay matrix — fully deterministic.
	SkewMatrixProfile = protocol.SkewMatrix
	// DistanceSkewProfile delays i→j by base + step·|i−j|.
	DistanceSkewProfile = protocol.DistanceSkew
	// ClusterWANProfile models clusters as datacenters: intra-cluster
	// uniform [0, intraMax], inter-cluster interBase + uniform [0, jitter].
	ClusterWANProfile = protocol.ClusterWAN
	// ClusterWANMatrixProfile is ClusterWANProfile with an asymmetric
	// per-cluster-pair base matrix.
	ClusterWANMatrixProfile = protocol.ClusterWANMatrix
	// HealingPartitionProfile holds messages crossing a cut until the run
	// clock reaches a heal instant, then delivers them.
	HealingPartitionProfile = protocol.HealingPartition
	// ParseProfile resolves a compact CLI spec ("uniform:1ms:5ms",
	// "skew:100us:50us", "wan:200us:5ms:1ms", "heal:2ms:0:500us").
	ParseProfile = protocol.ParseProfile
)

// LogSlotSep separates replicated-log slots inside an smr Outcome's
// Decision string.
const LogSlotSep = protocol.LogSep

// ScriptOp is one scripted register operation of Workload.Scripts.
type ScriptOp = protocol.RegisterOp

// Scripted register operation constructors (Workload.Scripts).
var (
	ScriptWrite = protocol.WriteOp
	ScriptRead  = protocol.ReadOp
)

// Value is a binary consensus value (0 or 1) or Bot (⊥, "no value"),
// which appears only inside the protocol.
type Value = model.Value

// The three protocol values. Proposals and decisions are always Zero or
// One.
const (
	Zero = model.Zero
	One  = model.One
	Bot  = model.Bot
)

// ProcID identifies a process (dense 0-based indexes).
type ProcID = model.ProcID

// ClusterID identifies a cluster (dense 0-based indexes).
type ClusterID = model.ClusterID

// Partition is the cluster decomposition of the process set.
type Partition = model.Partition

// Partition constructors.
var (
	// NewPartition builds a partition from explicit 0-based member lists.
	NewPartition = model.NewPartition
	// ParsePartition builds a partition from a 1-based spec such as
	// "1-3/4-5/6-7".
	ParsePartition = model.Parse
	// Singletons is the m=n decomposition (pure message passing).
	Singletons = model.Singletons
	// SingleCluster is the m=1 decomposition (pure shared memory).
	SingleCluster = model.SingleCluster
	// Blocks splits n processes into m contiguous near-equal clusters.
	Blocks = model.Blocks
	// Fig1Left is the paper's left Figure-1 layout: {p1,p2,p3} {p4,p5} {p6,p7}.
	Fig1Left = model.Fig1Left
	// Fig1Right is the paper's right Figure-1 layout: {p1} {p2..p5} {p6,p7};
	// P[2] is a majority cluster.
	Fig1Right = model.Fig1Right
)

// Algorithm selects one of the paper's two consensus algorithms.
type Algorithm = core.Algorithm

// The paper's two algorithms.
const (
	// LocalCoin is Algorithm 2 (Ben-Or extension; two-phase rounds).
	LocalCoin = core.LocalCoin
	// CommonCoin is Algorithm 3 (FMR extension; single-phase rounds,
	// expected 2 rounds after estimates stabilize).
	CommonCoin = core.CommonCoin
)

// Engine selects the execution engine driving a simulated run.
type Engine = core.Engine

// The two engines. EngineVirtual — the default — is a deterministic
// discrete-event simulation: same Config (including Seed), same Result and
// trace, bit for bit, with no wall-clock time spent. EngineRealtime is the
// goroutine-per-process backend kept for differential testing.
const (
	EngineVirtual  = core.EngineVirtual
	EngineRealtime = core.EngineRealtime
)

// ParseEngine resolves an engine name as accepted by the CLIs ("virtual",
// "realtime", and abbreviations).
var ParseEngine = sim.ParseEngine

// Config describes one hybrid consensus execution. See core.Config for
// field documentation.
type Config = core.Config

// Result aggregates a run; ProcResult is one process's outcome.
type (
	Result     = sim.Result
	ProcResult = sim.ProcResult
)

// Status classifies process outcomes.
type Status = sim.Status

// Possible process outcomes.
const (
	StatusDecided = sim.StatusDecided
	StatusCrashed = sim.StatusCrashed
	StatusBlocked = sim.StatusBlocked
)

// Solve runs binary consensus in the hybrid communication model and
// returns every process's outcome.
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolHybrid, …}; this
// wrapper remains for one release.
func Solve(cfg Config) (*Result, error) { return core.Run(cfg) }

// Failure injection: crash schedules and step points.
type (
	// Schedule is a failure pattern: which processes crash, and where.
	Schedule = failures.Schedule
	// Crash is one process's crash plan.
	Crash = failures.Crash
	// CrashPoint locates a crash: stage of a phase of a round.
	CrashPoint = failures.Point
	// CrashStage enumerates the step points of a phase.
	CrashStage = failures.Stage
)

// Crash stages, in execution order within a phase.
const (
	StageRoundStart            = failures.StageRoundStart
	StageAfterClusterConsensus = failures.StageAfterClusterConsensus
	StageMidBroadcast          = failures.StageMidBroadcast
	StageAfterExchange         = failures.StageAfterExchange
	StageBeforeDecide          = failures.StageBeforeDecide
)

// Failure-pattern constructors.
var (
	// NewSchedule returns an empty (crash-free) schedule over n processes.
	NewSchedule = failures.NewSchedule
	// CrashAllExcept crashes every process at the given point except the
	// listed survivors.
	CrashAllExcept = failures.CrashAllExcept
)

// Trace records structured events of an execution (attach via Config.Trace)
// and offers invariant checkers; see the trace package.
type Trace = trace.Log

// NewTrace returns an empty event log.
func NewTrace() *Trace { return trace.New() }

// CheckClusterUniformity verifies the one-for-all premise over a trace: at
// one (round, phase), all members of a cluster broadcast the same value.
func CheckClusterUniformity(l *Trace, part *Partition) error {
	return trace.CheckClusterUniformity(l, part)
}

// Coin interfaces, for rigging executions in tests and demos.
type (
	// LocalCoinSource yields per-process random bits.
	LocalCoinSource = coin.Local
	// CommonCoinSource yields the shared per-round bit sequence.
	CommonCoinSource = coin.Common
)

// Coin constructors.
var (
	// NewFixedCommonCoin rigs the common coin to a repeating bit table.
	NewFixedCommonCoin = coin.NewFixedCommon
	// NewFixedLocalCoin rigs a local coin to a repeating sequence.
	NewFixedLocalCoin = coin.NewFixedLocal
)

// Baselines and comparators.

// BenOrConfig configures the pure message-passing Ben-Or baseline.
type BenOrConfig = benor.Config

// SolveBenOr runs Ben-Or's algorithm (the m=n degenerate case, with plain
// counting instead of cluster closures).
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolBenOr, …}.
func SolveBenOr(cfg BenOrConfig) (*Result, error) { return benor.Run(cfg) }

// MPCoinConfig configures the pure message-passing common-coin baseline.
type MPCoinConfig = mpcoin.Config

// SolveMPCoin runs the message-passing common-coin algorithm that
// Algorithm 3 extends.
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolMPCoin, …}.
func SolveMPCoin(cfg MPCoinConfig) (*Result, error) { return mpcoin.Run(cfg) }

// SharedMemoryConfig configures the m=1 shared-memory baseline.
type SharedMemoryConfig = shconsensus.Config

// SolveSharedMemory runs single-object compare&swap consensus (wait-free,
// tolerates any number of crashes, zero messages).
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolSharedMem, …}.
func SolveSharedMemory(cfg SharedMemoryConfig) (*Result, error) { return shconsensus.Run(cfg) }

// The m&m model comparator (Aguilera et al., PODC 2018).
type (
	// MMGraph induces the m&m memory domains S_i = {p_i} ∪ neighbors(p_i).
	MMGraph = mm.Graph
	// MMConfig configures an m&m consensus execution.
	MMConfig = mm.Config
)

// m&m graph constructors.
var (
	// NewMMGraph builds a graph from an edge list.
	NewMMGraph = mm.NewGraph
	// Fig2Graph is the appendix's example graph on 5 processes.
	Fig2Graph = mm.Fig2
)

// SolveMM runs the m&m-model consensus analog (each process touches
// α_i + 1 consensus objects per phase; no one-for-all closure).
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolMM, …} whose
// Topology carries the graph's edge list (Graph.EdgeList).
func SolveMM(cfg MMConfig) (*Result, error) { return mm.Run(cfg) }

// Multivalued consensus (extension beyond the paper: the classical
// reduction from multivalued to binary consensus, instantiated over the
// hybrid model so it inherits the one-for-all fault tolerance).
type (
	// MultivaluedConfig configures a multivalued consensus execution; the
	// proposals are arbitrary strings.
	MultivaluedConfig = multivalued.Config
	// MultivaluedResult aggregates a multivalued run.
	MultivaluedResult = multivalued.Result
)

// SolveMultivalued runs consensus on arbitrary string proposals.
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolMultivalued, …}.
func SolveMultivalued(cfg MultivaluedConfig) (*MultivaluedResult, error) {
	return multivalued.Run(cfg)
}

// Atomic register over the hybrid model (extension, after the paper's
// reference [16]): a cluster-aware ABD construction whose operations
// terminate whenever clusters with a survivor cover a majority — so a
// majority-cluster member keeps reading/writing alone.
type (
	// RegisterSystem is a running register deployment.
	RegisterSystem = register.System
	// RegisterHandle is one process's client interface.
	RegisterHandle = register.Handle
	// RegisterOptions configures a deployment.
	RegisterOptions = register.Options
)

// Register operation errors.
var (
	ErrRegisterTimeout = register.ErrTimeout
	ErrRegisterCrashed = register.ErrCrashed
)

// NewRegister deploys an atomic multi-writer multi-reader register over
// the given partition (the interactive realtime surface; for
// deterministic closed runs use RunRegister).
func NewRegister(part *Partition, opts RegisterOptions) (*RegisterSystem, error) {
	return register.New(part, opts)
}

// Scripted register runs: each process executes a sequence of read/write
// operations on the unified engine driver — deterministic under the
// default virtual engine, blocked operations detected by quiescence.
type (
	// RegisterRunConfig configures a scripted register execution.
	RegisterRunConfig = register.Config
	// RegisterOp is one scripted operation (see RegisterWriteOp/ReadOp).
	RegisterOp = register.Op
	// RegisterRunResult aggregates a scripted run.
	RegisterRunResult = register.Result
)

// Scripted register operation constructors.
var (
	RegisterWriteOp = register.WriteOp
	RegisterReadOp  = register.ReadOp
)

// RunRegister executes one scripted register run.
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolRegister, …}
// whose Workload.Scripts uses ScriptWrite/ScriptRead ops.
func RunRegister(cfg RegisterRunConfig) (*RegisterRunResult, error) { return register.Run(cfg) }

// Replicated log / state machine replication (extension): a sequence of
// log slots, each decided by hybrid multivalued consensus.
type (
	// LogConfig configures a replicated-log execution.
	LogConfig = smr.Config
	// LogResult aggregates a replicated-log run.
	LogResult = smr.Result
	// LogReplicaResult is one replica's view.
	LogReplicaResult = smr.ReplicaResult
)

// LogNoOp is the value of a slot won by a replica with no pending command.
const LogNoOp = smr.NoOp

// SolveLog runs a replicated log: all live replicas build identical
// command sequences.
//
// Deprecated: use Run with a Scenario{Protocol: ProtocolSMR, …}.
func SolveLog(cfg LogConfig) (*LogResult, error) { return smr.Run(cfg) }

// Experiments.

// ExperimentOptions tunes an experiment run.
type ExperimentOptions = harness.Options

// ExperimentReport is one experiment's rendered table plus keyed findings.
type ExperimentReport = harness.Report

// ExperimentIDs lists the available experiment identifiers (E1…E8); see
// DESIGN.md for the per-experiment index.
var ExperimentIDs = harness.ExperimentIDs

// RunExperiment executes one of the paper-reproduction experiments.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentReport, error) {
	return harness.Run(id, opts)
}

// DefaultTimeout bounds realtime-engine runs whose liveness condition may
// not hold. The virtual engine needs no timeout: blocked runs are detected
// deterministically by quiescence.
const DefaultTimeout = core.DefaultTimeout

// DefaultMaxSteps bounds virtual-engine runs that never converge (see
// Config.MaxSteps).
const DefaultMaxSteps = core.DefaultMaxSteps

// SweepConfigs runs many independent hybrid configurations on a worker
// pool and returns results in input order.
//
// Deprecated: use Sweep with []Scenario.
func SweepConfigs(cfgs []Config, parallelism int) ([]*Result, error) {
	return harness.SweepCore(cfgs, parallelism)
}
